//! The disk server: a deprivileged user-level driver for the AHCI
//! controller (Sections 4 and 7.3, Figure 4).
//!
//! Clients (virtual-machine monitors) register a channel — a shared
//! completion-ring page plus a completion semaphore — then submit
//! requests through the request portal, delegating the DMA buffer
//! pages with the message. The server programs the physical
//! controller; the device DMAs *directly into the delegated pages*
//! through the IOMMU, so the server never copies payload data and can
//! only reach memory explicitly delegated to it. On the completion
//! interrupt the server writes a record into the client's ring and
//! signals the client's semaphore.
//!
//! A per-client outstanding-request bound implements the
//! denial-of-service throttling of Section 4.2.

#![deny(clippy::indexing_slicing, clippy::unwrap_used, clippy::panic)]

use std::collections::VecDeque;

use nova_core::cap::CapSel;
use nova_core::{CompCtx, Component, Hypercall, Kernel, Utcb};
use nova_hw::ahci::{regs, ATA_READ_DMA_EXT, ATA_WRITE_DMA_EXT, SECTOR};
use nova_hw::Cycles;
use nova_trace::Kind as TraceKind;
use nova_x86::insn::OpSize;

use crate::proto::disk as proto;

/// Server virtual-address layout and platform facts, provided by the
/// root partition manager at launch.
#[derive(Clone, Copy, Debug)]
pub struct DiskServerConfig {
    /// VA of the AHCI MMIO window (identity-mapped by root).
    pub mmio_va: u64,
    /// VA of the server's private command memory (≥ 2 pages:
    /// command list + command table).
    pub cmd_va: u64,
    /// First page number of the client completion rings
    /// (ring of client `i` at `ring_base_page + i`).
    pub ring_base_page: u64,
    /// GSI of the AHCI controller.
    pub gsi: u8,
    /// Scheduling priority for the server EC.
    pub prio: u8,
    /// Self-check/heartbeat period in cycles; 0 disables the tick.
    /// With a tick the server pets its watchdog, polls for lost
    /// completion interrupts, and resets a wedged controller.
    pub heartbeat: Cycles,
}

impl DiskServerConfig {
    /// The conventional layout used by the system builder.
    pub fn standard() -> DiskServerConfig {
        DiskServerConfig {
            mmio_va: nova_hw::machine::AHCI_BASE,
            cmd_va: 0x0010_0000,
            ring_base_page: 0x0020_0000 / 4096,
            gsi: nova_hw::machine::AHCI_IRQ,
            prio: 32,
            heartbeat: 0,
        }
    }

    /// The standard layout with the self-check tick enabled — what a
    /// supervised launch uses.
    pub fn supervised() -> DiskServerConfig {
        DiskServerConfig {
            heartbeat: 1_000_000,
            ..DiskServerConfig::standard()
        }
    }

    /// Selector where client `i`'s completion-semaphore capability
    /// must be delegated (documented protocol constant).
    pub fn client_sm_sel(client: usize) -> CapSel {
        0x80 + client
    }
}

/// Well-known selectors inside the server's capability space.
const SEL_IRQ_SM: CapSel = 0x10;
const SEL_SC: CapSel = 0x11;
const SEL_TICK_SM: CapSel = 0x12;

/// How many times a request is issued (initial attempt plus retries
/// after task-file errors or controller resets) before the server
/// gives up and reports an error completion.
const MAX_ISSUE_ATTEMPTS: u32 = 3;

/// How long an issued command may stay incomplete before the
/// self-check declares it lost or stuck. Must exceed the worst-case
/// legitimate latency (seek plus the largest transfer).
const REQUEST_TIMEOUT: Cycles = 4_000_000;

struct Client {
    ring_page: u64,
    ring_head: u32,
    outstanding: usize,
    /// A detached client's slot stays allocated (ring-page assignments
    /// are positional) but completions are dropped instead of written
    /// into a ring a dead VMM no longer reads, and registration may
    /// reuse the slot for the client's next incarnation.
    active: bool,
}

#[derive(Clone, Copy)]
struct Request {
    client: usize,
    write: bool,
    lba: u64,
    sectors: u32,
    /// Scatter-gather list of (window byte address, byte count)
    /// segments; only the first `nsegs` entries are meaningful. The
    /// addresses carry any in-page offset of the client's buffers.
    segs: [(u64, u32); proto::MAX_SEGMENTS],
    nsegs: usize,
    tag: u64,
    attempts: u32,
    /// Causal trace context carried on the wire from the client; the
    /// server runs each request's accept/issue/complete work under it
    /// so its spans stitch into the originating request's tree.
    ctx: u64,
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Requests accepted.
    pub accepted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected with EBUSY.
    pub rejected: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Spurious completion interrupts absorbed.
    pub spurious: u64,
    /// Re-issues after an error completion (task-file error).
    pub media_retries: u64,
    /// Requests that exhausted the retry budget and completed with
    /// [`proto::STATUS_ERROR`].
    pub failed: u64,
    /// Completions recovered by polling after a lost interrupt.
    pub lost_irq_recovered: u64,
    /// Controller resets performed for stuck commands.
    pub controller_resets: u64,
}

/// The disk-server component.
pub struct DiskServer {
    cfg: DiskServerConfig,
    clients: Vec<Client>,
    queue: VecDeque<Request>,
    inflight: Option<Request>,
    issued_at: Cycles,
    irq_sm: Option<nova_core::SmId>,
    tick_sm: Option<nova_core::SmId>,
    /// Statistics.
    pub stats: DiskStats,
    /// Modeled cycles of server work per request submission.
    pub submit_cost: Cycles,
    /// Modeled cycles of server work per completion.
    pub complete_cost: Cycles,
}

impl DiskServer {
    /// Creates the server.
    pub fn new(cfg: DiskServerConfig) -> DiskServer {
        DiskServer {
            cfg,
            clients: Vec::new(),
            queue: VecDeque::new(),
            inflight: None,
            issued_at: 0,
            irq_sm: None,
            tick_sm: None,
            stats: DiskStats::default(),
            submit_cost: 1400,
            complete_cost: 1100,
        }
    }

    fn mmio_write(&self, k: &mut Kernel, ctx: CompCtx, reg: u32, val: u32) {
        let ok = k.dev_mmio_write(ctx, self.cfg.mmio_va + reg as u64, OpSize::Dword, val);
        debug_assert!(ok, "disk server lost its MMIO mapping");
    }

    fn mmio_read(&self, k: &mut Kernel, ctx: CompCtx, reg: u32) -> u32 {
        k.dev_mmio_read(ctx, self.cfg.mmio_va + reg as u64, OpSize::Dword)
            .unwrap_or(0)
    }

    /// Emits a disk-server tracepoint stamped with the current cycle.
    fn trace(k: &mut Kernel, ctx: CompCtx, kind: TraceKind, detail: u64) {
        let at = k.now();
        k.machine
            .bus
            .trace
            .emit(0, ctx.pd.0 as u16, kind, detail, at);
    }

    /// Programs the physical controller with `req` (Figure 4, step 3).
    fn issue(&mut self, k: &mut Kernel, ctx: CompCtx, req: Request) {
        k.machine.bus.trace.set_ctx(req.ctx);
        Self::trace(k, ctx, TraceKind::DiskIssue, req.lba);
        // The physical-controller service window opens here and closes
        // when the command's completion is disposed of — the `hw`
        // layer of the request's critical path.
        let at = k.now();
        k.machine
            .bus
            .trace
            .begin(0, ctx.pd.0 as u16, TraceKind::HwIo, req.lba, at);
        k.charge(self.submit_cost);
        let clb = self.cfg.cmd_va;
        let ctba = self.cfg.cmd_va + 0x1000;

        // Command header slot 0: one PRDT entry per segment.
        k.mem_write_u32(ctx, clb, (req.nsegs as u32) << 16);
        k.mem_write_u32(ctx, clb + 8, ctba as u32);
        k.mem_write_u32(ctx, clb + 12, (ctba >> 32) as u32);

        // CFIS: host-to-device, READ/WRITE DMA EXT.
        let cmd = if req.write {
            ATA_WRITE_DMA_EXT
        } else {
            ATA_READ_DMA_EXT
        };
        k.mem_write(ctx, ctba, &[0x27, 0, cmd, 0]);
        k.mem_write(
            ctx,
            ctba + 4,
            &[
                req.lba as u8,
                (req.lba >> 8) as u8,
                (req.lba >> 16) as u8,
                0,
                (req.lba >> 24) as u8,
                (req.lba >> 32) as u8,
                (req.lba >> 40) as u8,
                0,
            ],
        );
        k.mem_write(
            ctx,
            ctba + 12,
            &[req.sectors as u8, (req.sectors >> 8) as u8],
        );

        // PRDT: one entry per delegated-window segment (domain
        // addresses; the IOMMU translates, and blocks anything not
        // delegated).
        for (i, &(addr, bytes)) in req.segs.iter().take(req.nsegs).enumerate() {
            let e = ctba + 0x80 + i as u64 * 16;
            k.mem_write_u32(ctx, e, addr as u32);
            k.mem_write_u32(ctx, e + 4, (addr >> 32) as u32);
            k.mem_write_u32(ctx, e + 12, bytes - 1);
        }

        // Doorbell: the one per-request MMIO write.
        self.mmio_write(k, ctx, regs::P0CI, 1);
        self.inflight = Some(req);
        self.issued_at = k.now();
    }

    /// Programs command-list base and interrupt enable — done at
    /// start-up and again after every controller reset (which clears
    /// both).
    fn init_controller(&self, k: &mut Kernel, ctx: CompCtx) {
        let clb = self.cfg.cmd_va;
        self.mmio_write(k, ctx, regs::P0CLB, clb as u32);
        self.mmio_write(k, ctx, regs::P0CLB2, (clb >> 32) as u32);
        self.mmio_write(k, ctx, regs::P0IE, 1);
    }

    /// Disposes of the in-flight request after the controller finished
    /// it: retry on a device error while budget remains, otherwise
    /// complete towards the client.
    fn finish_inflight(&mut self, k: &mut Kernel, ctx: CompCtx, error: bool) {
        let Some(mut req) = self.inflight.take() else {
            return;
        };
        k.machine.bus.trace.set_ctx(req.ctx);
        let at = k.now();
        k.machine
            .bus
            .trace
            .end(0, ctx.pd.0 as u16, TraceKind::HwIo, req.lba, at);
        if error && req.attempts + 1 < MAX_ISSUE_ATTEMPTS {
            req.attempts += 1;
            self.stats.media_retries += 1;
            k.counters.request_retries += 1;
            Self::trace(k, ctx, TraceKind::DiskRetry, req.attempts as u64);
            self.issue(k, ctx, req);
            return;
        }
        let status = if error { proto::STATUS_ERROR } else { 0 };
        self.complete(k, ctx, req, status);
    }

    fn complete(&mut self, k: &mut Kernel, ctx: CompCtx, req: Request, status: u32) {
        k.machine.bus.trace.set_ctx(req.ctx);
        Self::trace(k, ctx, TraceKind::DiskComplete, status as u64);
        if k.machine.bus.trace.active() {
            let served = k.now().saturating_sub(self.issued_at);
            k.machine.bus.trace.metrics.observe(
                nova_trace::names::DISK_SERVICE_CYCLES,
                ctx.pd.0 as u64,
                served,
            );
        }
        k.charge(self.complete_cost);
        let bytes = req.sectors as u64 * SECTOR as u64;
        self.stats.completed += 1;
        self.stats.bytes += bytes;
        k.counters.disk_ops += 1;
        if status != 0 {
            self.stats.failed += 1;
            k.counters.degraded_errors += 1;
        }

        // Completion record into the client's shared ring page
        // (Figure 4, step 7's shared-memory channel). A detached
        // client's completion is dropped: its ring page may already
        // back the next incarnation's channel, and its semaphore
        // capability died with it.
        if let Some(c) = self.clients.get_mut(req.client).filter(|c| c.active) {
            c.outstanding = c.outstanding.saturating_sub(1);
            let slot = c.ring_head as usize % proto::RING_RECORDS;
            c.ring_head = c.ring_head.wrapping_add(1);
            let ring_va = c.ring_page * 4096;
            let rec = ring_va + slot as u64 * 16;
            k.mem_write_u32(ctx, rec, req.tag as u32);
            k.mem_write_u32(ctx, rec + 4, status);
            k.mem_write_u32(ctx, rec + 8, bytes as u32);
            let head = c.ring_head;
            k.mem_write_u32(ctx, ring_va + 4092, head);
            // Signal the client's completion semaphore.
            let sm = DiskServerConfig::client_sm_sel(req.client);
            let _ = k.hypercall(ctx, Hypercall::SmUp { sm });
        }

        // Next queued request.
        if let Some(next) = self.queue.pop_front() {
            self.issue(k, ctx, next);
        }
    }

    /// Parses and validates one request body
    /// `(op, lba, sectors, tag, ctx, nsegs, (addr, bytes) × nsegs)`
    /// starting at word `at` of `utcb`, on behalf of `client`. Returns
    /// the request and the number of words consumed, or `None` when
    /// the body is malformed or a segment touches memory the client
    /// never delegated.
    fn parse_request(
        &self,
        k: &Kernel,
        ctx: CompCtx,
        utcb: &Utcb,
        at: usize,
        client: usize,
    ) -> Option<(Request, usize)> {
        let op = utcb.word(at);
        let lba = utcb.word(at + 1);
        let sectors = utcb.word(at + 2) as u32;
        let tag = utcb.word(at + 3);
        let rctx = utcb.word(at + 4);
        let nsegs = utcb.word(at + 5) as usize;
        if !self.clients.get(client).is_some_and(|c| c.active)
            || sectors == 0
            || sectors as u64 > proto::MAX_SECTORS
            || (op != proto::OP_READ && op != proto::OP_WRITE)
            || nsegs == 0
            || nsegs > proto::MAX_SEGMENTS
        {
            return None;
        }
        let mut segs = [(0u64, 0u32); proto::MAX_SEGMENTS];
        let mut total = 0u64;
        for (i, seg) in segs.iter_mut().take(nsegs).enumerate() {
            let addr = utcb.word(at + 6 + i * 2);
            let bytes = utcb.word(at + 7 + i * 2);
            if bytes == 0 || bytes > proto::MAX_SECTORS * SECTOR as u64 {
                return None;
            }
            // Every page the segment touches must be delegated.
            for p in (addr >> 12)..=((addr + bytes - 1) >> 12) {
                k.obj.pd(ctx.pd).mem.lookup(p)?;
            }
            *seg = (addr, bytes as u32);
            total += bytes;
        }
        if total != sectors as u64 * SECTOR as u64 {
            return None;
        }
        Some((
            Request {
                client,
                write: op == proto::OP_WRITE,
                lba,
                sectors,
                segs,
                nsegs,
                tag,
                attempts: 0,
                ctx: rctx,
            },
            6 + nsegs * 2,
        ))
    }

    /// Accepts a validated request onto the channel: bumps the
    /// outstanding count and either issues it immediately or queues it
    /// behind the in-flight command.
    fn accept(&mut self, k: &mut Kernel, ctx: CompCtx, req: Request) {
        if let Some(c) = self.clients.get_mut(req.client) {
            c.outstanding += 1;
        }
        self.stats.accepted += 1;
        k.machine.bus.trace.set_ctx(req.ctx);
        Self::trace(k, ctx, TraceKind::DiskAccept, req.lba);
        if self.inflight.is_none() {
            self.issue(k, ctx, req);
        } else {
            self.queue.push_back(req);
        }
    }

    /// Detaches a client whose owner (VMM incarnation) died: queued
    /// requests are dropped, any in-flight command finishes against a
    /// suppressed ring, and the slot becomes reusable by the next
    /// registration. Called by root's supervisor before it revives the
    /// VMM, so stale completions can never corrupt the successor's
    /// ring.
    pub fn detach_client(&mut self, client: u64) {
        let id = client as usize;
        if let Some(c) = self.clients.get_mut(id) {
            c.active = false;
            c.outstanding = 0;
            c.ring_head = 0;
        }
        self.queue.retain(|r| r.client != id);
    }

    /// Periodic self-check: heartbeat plus recovery of requests whose
    /// completion never arrived. A lost interrupt is recovered by
    /// polling; a command the controller never finished is recovered
    /// by resetting the controller and re-issuing.
    fn tick(&mut self, k: &mut Kernel, ctx: CompCtx) {
        // Heartbeat: a healthy server shows the watchdog a sign of
        // life every tick. A crashed server's tick never runs, so the
        // heartbeat stops and the watchdog fires.
        let _ = k.hypercall(ctx, Hypercall::WatchdogPet);

        if self.inflight.is_none() || k.now().saturating_sub(self.issued_at) < REQUEST_TIMEOUT {
            return;
        }
        k.counters.request_timeouts += 1;
        Self::trace(k, ctx, TraceKind::DiskTimeout, 0);
        let ci = self.mmio_read(k, ctx, regs::P0CI);
        if ci & 1 == 0 {
            // The command finished but its interrupt was lost: drain
            // status by polling and complete normally.
            let is = self.mmio_read(k, ctx, regs::IS);
            self.mmio_write(k, ctx, regs::IS, is);
            let p0is = self.mmio_read(k, ctx, regs::P0IS);
            self.mmio_write(k, ctx, regs::P0IS, p0is);
            self.stats.lost_irq_recovered += 1;
            self.finish_inflight(k, ctx, p0is & (1 << 30) != 0);
            return;
        }
        // CI still set: the transfer is wedged. Reset the controller
        // (dropping the stuck command), re-program it, and re-issue
        // while the attempt budget lasts.
        self.stats.controller_resets += 1;
        k.counters.controller_resets += 1;
        Self::trace(k, ctx, TraceKind::DiskReset, 0);
        self.mmio_write(k, ctx, regs::GHC, 1);
        self.init_controller(k, ctx);
        let Some(mut req) = self.inflight.take() else {
            return;
        };
        // The stuck command's controller window ends with the reset.
        k.machine.bus.trace.set_ctx(req.ctx);
        let at = k.now();
        k.machine
            .bus
            .trace
            .end(0, ctx.pd.0 as u16, TraceKind::HwIo, req.lba, at);
        if req.attempts + 1 < MAX_ISSUE_ATTEMPTS {
            req.attempts += 1;
            k.counters.request_retries += 1;
            self.issue(k, ctx, req);
        } else {
            self.complete(k, ctx, req, proto::STATUS_ERROR);
        }
    }
}

impl Component for DiskServer {
    fn name(&self) -> &str {
        "disk-server"
    }

    fn on_start(&mut self, k: &mut Kernel, ctx: CompCtx) {
        // Scheduling context for interrupt activations.
        k.hypercall(
            ctx,
            Hypercall::CreateSc {
                ec: nova_core::kernel::SEL_SELF_EC,
                prio: self.cfg.prio,
                quantum: 100_000,
                dst: SEL_SC,
            },
        )
        .expect("disk server SC");

        // Interrupt semaphore bound to this EC, attached to the GSI.
        k.hypercall(
            ctx,
            Hypercall::CreateSm {
                count: 0,
                dst: SEL_IRQ_SM,
            },
        )
        .expect("irq semaphore");
        k.hypercall(ctx, Hypercall::SmBind { sm: SEL_IRQ_SM })
            .expect("bind");
        self.irq_sm = Some(nova_core::SmId(k.obj.sms.len() - 1));
        k.hypercall(
            ctx,
            Hypercall::AssignGsi {
                sm: SEL_IRQ_SM,
                gsi: self.cfg.gsi,
            },
        )
        .expect("gsi routed to disk server");

        // Self-check tick: heartbeat for the supervisor's watchdog and
        // the poll that recovers lost interrupts / stuck commands.
        if self.cfg.heartbeat > 0 {
            k.hypercall(
                ctx,
                Hypercall::CreateSm {
                    count: 0,
                    dst: SEL_TICK_SM,
                },
            )
            .expect("tick semaphore");
            k.hypercall(ctx, Hypercall::SmBind { sm: SEL_TICK_SM })
                .expect("bind tick");
            self.tick_sm = Some(nova_core::SmId(k.obj.sms.len() - 1));
            k.hypercall(
                ctx,
                Hypercall::SetTimer {
                    sm: SEL_TICK_SM,
                    period: self.cfg.heartbeat,
                },
            )
            .expect("tick timer");
        }

        // Controller bring-up. The reset first: a restarted server
        // must not inherit command state (or a pending completion)
        // from a previous incarnation.
        self.mmio_write(k, ctx, regs::GHC, 1);
        self.init_controller(k, ctx);
    }

    fn on_call(&mut self, k: &mut Kernel, ctx: CompCtx, portal_id: u64, utcb: &mut Utcb) {
        match portal_id {
            proto::PORTAL_REGISTER => {
                if utcb.len_words() == 0 {
                    // Phase 1: allocate the channel, preferring a
                    // detached slot (so supervised VMM incarnations do
                    // not exhaust the client table). The reply word is
                    // the client id, so "full" is the one id no server
                    // can ever hand out.
                    if let Some((id, c)) =
                        self.clients.iter_mut().enumerate().find(|(_, c)| !c.active)
                    {
                        c.ring_head = 0;
                        c.outstanding = 0;
                        c.active = true;
                        utcb.set_msg(&[id as u64]);
                        return;
                    }
                    let id = self.clients.len();
                    if id >= proto::MAX_CLIENTS {
                        utcb.set_msg(&[u64::MAX]);
                        return;
                    }
                    self.clients.push(Client {
                        ring_page: self.cfg.ring_base_page + id as u64,
                        ring_head: 0,
                        outstanding: 0,
                        active: true,
                    });
                    utcb.set_msg(&[id as u64]);
                } else {
                    // Phase 2: the ring page and semaphore capability
                    // arrived as transfer items (already applied by the
                    // kernel at the documented selectors/pages).
                    let id = utcb.word(0) as usize;
                    let ok = self.clients.get(id).is_some_and(|c| c.active);
                    utcb.set_msg(&[if ok { proto::OK } else { proto::EINVAL }]);
                }
            }
            proto::PORTAL_REQUEST => {
                let client = utcb.word(0) as usize;
                let Some((req, _)) = self.parse_request(k, ctx, utcb, 1, client) else {
                    utcb.set_msg(&[proto::EINVAL]);
                    return;
                };
                let outstanding = self.clients.get(client).map_or(0, |c| c.outstanding);
                if outstanding >= proto::MAX_OUTSTANDING {
                    // Throttle the channel (Section 4.2).
                    self.stats.rejected += 1;
                    Self::trace(k, ctx, TraceKind::DiskReject, req.lba);
                    utcb.set_msg(&[proto::EBUSY]);
                    return;
                }
                self.accept(k, ctx, req);
                utcb.set_msg(&[proto::OK]);
            }
            proto::PORTAL_BATCH => {
                let client = utcb.word(0) as usize;
                let count = utcb.word(1) as usize;
                if !self.clients.get(client).is_some_and(|c| c.active)
                    || count == 0
                    || count > proto::MAX_BATCH
                {
                    utcb.set_msg(&[proto::EINVAL, 0]);
                    return;
                }
                let mut at = 2;
                let mut accepted = 0u64;
                let mut status = proto::OK;
                for _ in 0..count {
                    let Some((req, used)) = self.parse_request(k, ctx, utcb, at, client) else {
                        status = proto::EINVAL;
                        break;
                    };
                    at += used;
                    let outstanding = self.clients.get(client).map_or(0, |c| c.outstanding);
                    if outstanding >= proto::MAX_OUTSTANDING {
                        self.stats.rejected += 1;
                        Self::trace(k, ctx, TraceKind::DiskReject, req.lba);
                        status = proto::EBUSY;
                        break;
                    }
                    self.accept(k, ctx, req);
                    accepted += 1;
                }
                if k.machine.bus.trace.active() {
                    k.machine.bus.trace.metrics.observe(
                        nova_trace::names::DISK_BATCH_SIZE,
                        ctx.pd.0 as u64,
                        accepted,
                    );
                }
                utcb.set_msg(&[status, accepted]);
            }
            _ => utcb.set_msg(&[proto::EINVAL]),
        }
    }

    fn on_signal(&mut self, k: &mut Kernel, ctx: CompCtx, sm: nova_core::SmId) {
        if self.tick_sm == Some(sm) {
            self.tick(k, ctx);
            return;
        }
        // The five-access completion sequence (Section 8.2): read and
        // clear the global and port interrupt status, confirm CI.
        let is = self.mmio_read(k, ctx, regs::IS);
        if is == 0 {
            self.stats.spurious += 1;
            k.counters.spurious_irqs += 1;
            Self::trace(k, ctx, TraceKind::DiskSpurious, 0);
            return;
        }
        self.mmio_write(k, ctx, regs::IS, is);
        let p0is = self.mmio_read(k, ctx, regs::P0IS);
        self.mmio_write(k, ctx, regs::P0IS, p0is);
        let ci = self.mmio_read(k, ctx, regs::P0CI);
        if ci & 1 == 0 {
            self.finish_inflight(k, ctx, p0is & (1 << 30) != 0);
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use nova_core::cap::Perms;
    use nova_core::obj::MemRights;
    use nova_core::utcb::XferItem;
    use nova_core::{KernelConfig, RunOutcome};
    use nova_hw::machine::{Machine, MachineConfig};

    use crate::root::{RootOps, RootPm};

    /// A test client that records completion signals and reads its
    /// ring.
    #[derive(Default)]
    struct TestClient {
        signals: u64,
    }

    impl Component for TestClient {
        fn name(&self) -> &str {
            "test-client"
        }
        fn on_call(&mut self, _k: &mut Kernel, _c: CompCtx, _p: u64, _u: &mut Utcb) {}
        fn on_signal(&mut self, _k: &mut Kernel, _c: CompCtx, _sm: nova_core::SmId) {
            self.signals += 1;
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    struct Setup {
        k: Kernel,
        server_portal_reg: CapSel,
        server_portal_req: CapSel,
        server_portal_req_batch: CapSel,
        client_ctx: CompCtx,
        client_comp: nova_core::CompId,
        server_comp: nova_core::CompId,
    }

    /// Boots root + disk server + a test client wired the way the
    /// system builder does it.
    fn setup() -> Setup {
        let m = Machine::new(MachineConfig::core_i7(64 << 20));
        let mut k = Kernel::new(m, KernelConfig::default());
        let (root_comp, root_ec) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
        k.start_component(root_comp, root_ec);
        let root_ctx = k.component_mut::<RootPm>(root_comp).unwrap().ctx.unwrap();

        let cfg = DiskServerConfig::standard();
        let ahci_dev = k.machine.dev.ahci;

        // Root creates the server PD and grants resources.
        let mut ops = RootOps::new(&mut k, root_ctx);
        let (srv_sel, srv_pd) = ops.create_pd("disk-server", None).unwrap();
        // AHCI MMIO window (identity).
        ops.grant_mem(
            srv_sel,
            nova_hw::machine::AHCI_BASE / 4096,
            1,
            MemRights::RW,
            cfg.mmio_va / 4096,
        )
        .unwrap();
        // Command memory: 2 DMA-able pages.
        ops.grant_mem(srv_sel, 0x300, 2, MemRights::RW_DMA, cfg.cmd_va / 4096)
            .unwrap();
        ops.grant_gsi(srv_sel, cfg.gsi).unwrap();
        ops.assign_device(srv_sel, ahci_dev).unwrap();

        let (server_comp, server_ec) = k.load_component(srv_pd, 0, Box::new(DiskServer::new(cfg)));
        k.start_component(server_comp, server_ec);

        // Server portals, created with the server's identity.
        let server_ctx = CompCtx {
            pd: srv_pd,
            ec: server_ec,
            comp: server_comp,
        };
        k.hypercall(
            server_ctx,
            Hypercall::CreatePt {
                ec: nova_core::kernel::SEL_SELF_EC,
                mtd: 0,
                id: proto::PORTAL_REGISTER,
                dst: 0x20,
            },
        )
        .unwrap();
        k.hypercall(
            server_ctx,
            Hypercall::CreatePt {
                ec: nova_core::kernel::SEL_SELF_EC,
                mtd: 0,
                id: proto::PORTAL_REQUEST,
                dst: 0x21,
            },
        )
        .unwrap();
        k.hypercall(
            server_ctx,
            Hypercall::CreatePt {
                ec: nova_core::kernel::SEL_SELF_EC,
                mtd: 0,
                id: proto::PORTAL_BATCH,
                dst: 0x22,
            },
        )
        .unwrap();

        // Client PD with some memory.
        let mut ops = RootOps::new(&mut k, root_ctx);
        let (cl_sel, cl_pd) = ops.create_pd("client", None).unwrap();
        ops.grant_mem(cl_sel, 0x400, 64, MemRights::RW_DMA, 0)
            .unwrap();
        let (client_comp, client_ec) = k.load_component(cl_pd, 0, Box::<TestClient>::default());
        k.start_component(client_comp, client_ec);
        let client_ctx = CompCtx {
            pd: cl_pd,
            ec: client_ec,
            comp: client_comp,
        };

        // Server delegates its portals to the client (via root in a
        // real launch; directly here).
        let srv_ctx = server_ctx;
        k.hypercall(
            srv_ctx,
            Hypercall::DelegateCap {
                dst_pd: {
                    // server needs a PD cap for the client: root grants it
                    0x30
                },
                sel: 0x20,
                perms: Perms::CALL,
                hot: 0x20,
            },
        )
        .expect_err("server has no client PD capability yet");
        let mut ops = RootOps::new(&mut k, root_ctx);
        // Root delegates portals from the server's space? Portals are in
        // the server's space; root holds the server PD cap but not the
        // portal caps. The launch convention: the server delegates via
        // root-granted PD caps. Grant the client PD cap to the server.
        ops.grant_cap(srv_sel, cl_sel, Perms::ALL, 0x30).unwrap();
        k.hypercall(
            srv_ctx,
            Hypercall::DelegateCap {
                dst_pd: 0x30,
                sel: 0x20,
                perms: Perms::CALL,
                hot: 0x20,
            },
        )
        .unwrap();
        k.hypercall(
            srv_ctx,
            Hypercall::DelegateCap {
                dst_pd: 0x30,
                sel: 0x21,
                perms: Perms::CALL,
                hot: 0x21,
            },
        )
        .unwrap();
        k.hypercall(
            srv_ctx,
            Hypercall::DelegateCap {
                dst_pd: 0x30,
                sel: 0x22,
                perms: Perms::CALL,
                hot: 0x23,
            },
        )
        .unwrap();

        // Client needs an SC so completion signals can run.
        k.hypercall(
            client_ctx,
            Hypercall::CreateSc {
                ec: nova_core::kernel::SEL_SELF_EC,
                prio: 16,
                quantum: 100_000,
                dst: 0x22,
            },
        )
        .unwrap();

        Setup {
            k,
            server_portal_reg: 0x20,
            server_portal_req: 0x21,
            server_portal_req_batch: 0x23,
            client_ctx,
            client_comp,
            server_comp,
        }
    }

    /// Registers the client channel: completion semaphore + ring page.
    fn register(s: &mut Setup) -> u64 {
        // Client creates its completion semaphore and binds to it.
        s.k.hypercall(
            s.client_ctx,
            Hypercall::CreateSm {
                count: 0,
                dst: 0x40,
            },
        )
        .unwrap();
        s.k.hypercall(s.client_ctx, Hypercall::SmBind { sm: 0x40 })
            .unwrap();

        let mut utcb = Utcb::new();
        s.k.ipc_call(s.client_ctx, s.server_portal_reg, &mut utcb)
            .unwrap();
        let client_id = utcb.word(0);

        // Delegate ring page (client page 1) and the semaphore.
        let cfg = DiskServerConfig::standard();
        let mut utcb = Utcb::new();
        utcb.set_msg(&[client_id]);
        utcb.xfer.push(XferItem::Mem {
            base: 1,
            count: 1,
            rights: MemRights::RW,
            hot: cfg.ring_base_page + client_id,
        });
        utcb.xfer.push(XferItem::Cap {
            sel: 0x40,
            perms: Perms::UP,
            hot: DiskServerConfig::client_sm_sel(client_id as usize),
        });
        s.k.ipc_call(s.client_ctx, s.server_portal_reg, &mut utcb)
            .unwrap();
        client_id
    }

    fn submit_read(s: &mut Setup, client: u64, lba: u64, sectors: u32, window: u64) -> u64 {
        let mut utcb = Utcb::new();
        let bytes = sectors as u64 * SECTOR as u64;
        utcb.set_msg(&[
            client,
            proto::OP_READ,
            lba,
            sectors as u64,
            99,
            0,
            1,
            window * 4096,
            bytes,
        ]);
        // Delegate client pages 8.. as the DMA window.
        let pages = bytes.div_ceil(4096);
        utcb.xfer.push(XferItem::Mem {
            base: 8,
            count: pages,
            rights: MemRights::RW_DMA,
            hot: window,
        });
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        utcb.word(0)
    }

    #[test]
    fn read_end_to_end() {
        let mut s = setup();
        let client = register(&mut s);
        let window = 0x500u64;
        let status = submit_read(&mut s, client, 100, 8, window);
        assert_eq!(status, proto::OK);

        // Run until the completion interrupt is processed.
        let out = s.k.run(Some(100_000_000));
        assert_eq!(out, RunOutcome::Idle);

        // Client got its signal.
        assert_eq!(
            s.k.component_mut::<TestClient>(s.client_comp)
                .unwrap()
                .signals,
            1
        );
        // Data landed in the client's pages (8..) — compare with the
        // disk's deterministic pattern for LBA 100.
        let got = s.k.mem_read(s.client_ctx, 8 * 4096, 16).unwrap();
        let expect = s.k.machine.ahci().sector(100);
        assert_eq!(got, expect[..16].to_vec());
        // Ring record written: tag 99, status 0.
        let cfg = DiskServerConfig::standard();
        let _ = cfg;
        let rec = s.k.mem_read_u32(s.client_ctx, 4096).unwrap();
        assert_eq!(rec, 99);
        let stats =
            s.k.component_mut::<DiskServer>(s.server_comp)
                .unwrap()
                .stats;
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.bytes, 8 * 512);
    }

    #[test]
    fn queueing_and_throttling() {
        let mut s = setup();
        let client = register(&mut s);
        // Submit more than MAX_OUTSTANDING requests back to back.
        let mut ok = 0;
        let mut busy = 0;
        for i in 0..(proto::MAX_OUTSTANDING + 3) {
            let status = submit_read(&mut s, client, i as u64, 1, 0x500 + i as u64);
            match status {
                proto::OK => ok += 1,
                proto::EBUSY => busy += 1,
                other => panic!("unexpected status {other}"),
            }
        }
        assert_eq!(ok, proto::MAX_OUTSTANDING);
        assert_eq!(busy, 3, "channel throttled (Section 4.2)");

        s.k.run(Some(1_000_000_000));
        let stats =
            s.k.component_mut::<DiskServer>(s.server_comp)
                .unwrap()
                .stats;
        assert_eq!(stats.completed, proto::MAX_OUTSTANDING as u64);
        assert_eq!(
            s.k.component_mut::<TestClient>(s.client_comp)
                .unwrap()
                .signals,
            proto::MAX_OUTSTANDING as u64
        );
    }

    #[test]
    fn invalid_requests_rejected() {
        let mut s = setup();
        let client = register(&mut s);
        // Zero sectors.
        let mut utcb = Utcb::new();
        utcb.set_msg(&[client, proto::OP_READ, 0, 0, 1, 0, 1, 0x500 * 4096, 512]);
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::EINVAL);
        // Window never delegated.
        let mut utcb = Utcb::new();
        utcb.set_msg(&[client, proto::OP_READ, 0, 8, 1, 0, 1, 0x900 * 4096, 8 * 512]);
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::EINVAL, "undelegated window refused");
        // Unknown client id.
        let mut utcb = Utcb::new();
        utcb.set_msg(&[77, proto::OP_READ, 0, 1, 1, 0, 1, 0x500 * 4096, 512]);
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::EINVAL);
        // Segment lengths that do not cover the transfer.
        let mut utcb = Utcb::new();
        utcb.set_msg(&[client, proto::OP_READ, 0, 8, 1, 0, 1, 0x500 * 4096, 512]);
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::EINVAL, "short scatter list refused");
        // Too many segments.
        let mut msg = vec![client, proto::OP_READ, 0, 9, 1, 0, 9];
        for i in 0..9u64 {
            msg.extend_from_slice(&[0x500 * 4096 + i * 512, 512]);
        }
        let mut utcb = Utcb::new();
        utcb.set_msg(&msg);
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::EINVAL, "segment bound enforced");
    }

    /// A scatter-gather read whose segments start at odd in-page
    /// offsets: the PRDT entries must carry the offsets through, so
    /// the payload lands exactly where the client pointed.
    #[test]
    fn scatter_gather_with_unaligned_segments() {
        let mut s = setup();
        let client = register(&mut s);
        let window = 0x500u64;
        // 8 sectors split across two segments at offsets 512 and 256
        // of two different window pages.
        let seg_a = window * 4096 + 512;
        let seg_b = (window + 1) * 4096 + 256;
        let mut utcb = Utcb::new();
        utcb.set_msg(&[
            client,
            proto::OP_READ,
            42,
            8,
            7,
            0,
            2,
            seg_a,
            2048,
            seg_b,
            2048,
        ]);
        utcb.xfer.push(XferItem::Mem {
            base: 8,
            count: 2,
            rights: MemRights::RW_DMA,
            hot: window,
        });
        s.k.ipc_call(s.client_ctx, s.server_portal_req, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::OK);
        s.k.run(Some(100_000_000));

        // First half of the transfer at client page 8 offset 512,
        // second half at page 9 offset 256.
        let mut expect = Vec::new();
        for lba in 42..50 {
            expect.extend_from_slice(&s.k.machine.ahci().sector(lba));
        }
        let got_a = s.k.mem_read(s.client_ctx, 8 * 4096 + 512, 2048).unwrap();
        let got_b = s.k.mem_read(s.client_ctx, 9 * 4096 + 256, 2048).unwrap();
        assert_eq!(got_a, expect[..2048].to_vec());
        assert_eq!(got_b, expect[2048..].to_vec());
        assert!(s.k.machine.bus.iommu.faults.is_empty());
    }

    /// One batched call submits a full channel's worth of requests and
    /// a follow-up batch is refused with the accepted-prefix count.
    #[test]
    fn batched_submission_fills_channel_in_one_call() {
        let mut s = setup();
        let client = register(&mut s);
        let mut msg = vec![client, proto::MAX_BATCH as u64];
        let mut utcb = Utcb::new();
        for i in 0..proto::MAX_BATCH as u64 {
            msg.extend_from_slice(&[proto::OP_READ, 10 + i, 1, i, 0, 1, (0x500 + i) * 4096, 512]);
            utcb.xfer.push(XferItem::Mem {
                base: 8 + i,
                count: 1,
                rights: MemRights::RW_DMA,
                hot: 0x500 + i,
            });
        }
        utcb.set_msg(&msg);
        s.k.ipc_call(s.client_ctx, s.server_portal_req_batch, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::OK);
        assert_eq!(
            utcb.word(1),
            proto::MAX_BATCH as u64,
            "all entries accepted"
        );

        // The channel is full now: another batch accepts nothing.
        let mut utcb = Utcb::new();
        utcb.set_msg(&[
            client,
            1,
            proto::OP_READ,
            99,
            1,
            77,
            0,
            1,
            0x500 * 4096,
            512,
        ]);
        s.k.ipc_call(s.client_ctx, s.server_portal_req_batch, &mut utcb)
            .unwrap();
        assert_eq!(utcb.word(0), proto::EBUSY);
        assert_eq!(utcb.word(1), 0);

        s.k.run(Some(1_000_000_000));
        let stats =
            s.k.component_mut::<DiskServer>(s.server_comp)
                .unwrap()
                .stats;
        assert_eq!(stats.completed, proto::MAX_BATCH as u64);
        assert_eq!(stats.rejected, 1);
        // Every request got its own completion record and signal.
        assert_eq!(
            s.k.component_mut::<TestClient>(s.client_comp)
                .unwrap()
                .signals,
            proto::MAX_BATCH as u64
        );
    }

    #[test]
    fn dma_confined_to_delegated_window() {
        let mut s = setup();
        let client = register(&mut s);
        submit_read(&mut s, client, 5, 8, 0x500);
        s.k.run(Some(100_000_000));
        // No IOMMU faults: everything the device touched was delegated.
        assert!(s.k.machine.bus.iommu.faults.is_empty());
        // And the client revoking its pages cuts the server's access.
        s.k.hypercall(
            s.client_ctx,
            Hypercall::RevokeMem {
                base: 8,
                count: 1,
                include_self: false,
            },
        )
        .unwrap();
        let ahci_dev = s.k.machine.dev.ahci;
        assert_eq!(
            s.k.machine
                .bus
                .iommu
                .translate(ahci_dev, 0x500 * 4096, true),
            None,
            "revocation reached the IOMMU"
        );
    }
}
