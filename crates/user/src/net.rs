//! The network driver: a deprivileged user-level driver for the
//! gigabit NIC.
//!
//! It owns the controller's MMIO window and interrupt, sets up the
//! receive descriptor ring in its own (DMA-delegated) memory, and
//! processes packets on coalesced interrupts — the host-side
//! counterpart of the Section 8.3 measurements (in which the guest
//! drives the NIC directly; this driver serves host networking and the
//! remote-attack containment tests).

use nova_core::cap::CapSel;
use nova_core::{CompCtx, Component, Hypercall, Kernel, Utcb};
use nova_hw::nic::{regs, DESC_SIZE, ICR_RXT0, RXD_STAT_DD};
use nova_x86::insn::OpSize;

/// Driver layout and platform facts.
#[derive(Clone, Copy, Debug)]
pub struct NetDriverConfig {
    /// VA of the NIC MMIO window.
    pub mmio_va: u64,
    /// VA of the descriptor ring (1 page, DMA-delegated).
    pub ring_va: u64,
    /// VA of the packet buffers (`ring_entries` × 16 KB, DMA).
    pub buf_va: u64,
    /// Ring size in descriptors.
    pub ring_entries: u32,
    /// NIC GSI.
    pub gsi: u8,
    /// Scheduling priority.
    pub prio: u8,
}

impl NetDriverConfig {
    /// The conventional layout used by the system builder.
    pub fn standard() -> NetDriverConfig {
        NetDriverConfig {
            mmio_va: nova_hw::machine::NIC_BASE,
            ring_va: 0x0030_0000,
            buf_va: 0x0034_0000,
            ring_entries: 64,
            gsi: nova_hw::machine::NIC_IRQ,
            prio: 32,
        }
    }
}

const SEL_IRQ_SM: CapSel = 0x10;
const SEL_SC: CapSel = 0x11;

/// Receive statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Packets received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
    /// Interrupts serviced.
    pub irqs: u64,
    /// Sequence gaps detected in the generator's packet stream.
    pub seq_errors: u64,
    /// Payload-integrity failures (fill byte diverges from the
    /// sequence-derived pattern — wire corruption).
    pub corrupt_errors: u64,
}

/// The network-driver component.
pub struct NetDriver {
    cfg: NetDriverConfig,
    head: u32,
    next_seq: u64,
    /// Statistics.
    pub stats: NetStats,
    /// Modeled per-packet processing cost (header parse + bookkeeping).
    pub per_packet_cost: u64,
}

impl NetDriver {
    /// Creates the driver.
    pub fn new(cfg: NetDriverConfig) -> NetDriver {
        NetDriver {
            cfg,
            head: 0,
            next_seq: 0,
            stats: NetStats::default(),
            per_packet_cost: 450,
        }
    }

    fn mmio_write(&self, k: &mut Kernel, ctx: CompCtx, reg: u32, val: u32) {
        k.dev_mmio_write(ctx, self.cfg.mmio_va + reg as u64, OpSize::Dword, val);
    }

    fn mmio_read(&self, k: &mut Kernel, ctx: CompCtx, reg: u32) -> u32 {
        k.dev_mmio_read(ctx, self.cfg.mmio_va + reg as u64, OpSize::Dword)
            .unwrap_or(0)
    }
}

impl Component for NetDriver {
    fn name(&self) -> &str {
        "net-driver"
    }

    fn on_start(&mut self, k: &mut Kernel, ctx: CompCtx) {
        k.hypercall(
            ctx,
            Hypercall::CreateSc {
                ec: nova_core::kernel::SEL_SELF_EC,
                prio: self.cfg.prio,
                quantum: 100_000,
                dst: SEL_SC,
            },
        )
        .expect("net driver SC");
        k.hypercall(
            ctx,
            Hypercall::CreateSm {
                count: 0,
                dst: SEL_IRQ_SM,
            },
        )
        .expect("irq semaphore");
        k.hypercall(ctx, Hypercall::SmBind { sm: SEL_IRQ_SM })
            .expect("bind");
        k.hypercall(
            ctx,
            Hypercall::AssignGsi {
                sm: SEL_IRQ_SM,
                gsi: self.cfg.gsi,
            },
        )
        .expect("gsi routed to net driver");

        // Fill the descriptor ring with buffer addresses (domain
        // addresses; the device reaches them through the IOMMU).
        for i in 0..self.cfg.ring_entries as u64 {
            let desc = self.cfg.ring_va + i * DESC_SIZE;
            let buf = self.cfg.buf_va + i * 0x4000;
            k.mem_write(ctx, desc, &buf.to_le_bytes());
            k.mem_write_u32(ctx, desc + 12, 0);
        }

        // Program the controller.
        self.mmio_write(k, ctx, regs::RDBAL, self.cfg.ring_va as u32);
        self.mmio_write(k, ctx, regs::RDBAH, (self.cfg.ring_va >> 32) as u32);
        self.mmio_write(
            k,
            ctx,
            regs::RDLEN,
            self.cfg.ring_entries * DESC_SIZE as u32,
        );
        self.mmio_write(k, ctx, regs::RDH, 0);
        self.mmio_write(k, ctx, regs::RDT, self.cfg.ring_entries - 1);
        self.mmio_write(k, ctx, regs::IMS, ICR_RXT0);
    }

    fn on_call(&mut self, _k: &mut Kernel, _ctx: CompCtx, _portal_id: u64, utcb: &mut Utcb) {
        // Status query portal: report statistics.
        utcb.set_msg(&[
            self.stats.packets,
            self.stats.bytes,
            self.stats.irqs,
            self.stats.seq_errors,
            self.stats.corrupt_errors,
        ]);
    }

    fn on_signal(&mut self, k: &mut Kernel, ctx: CompCtx, _sm: nova_core::SmId) {
        let icr = self.mmio_read(k, ctx, regs::ICR);
        if icr & ICR_RXT0 == 0 {
            return; // spurious
        }
        self.stats.irqs += 1;

        // Drain completed descriptors.
        loop {
            let desc = self.cfg.ring_va + (self.head as u64) * DESC_SIZE;
            let status = k.mem_read(ctx, desc + 12, 1).map(|b| b[0]).unwrap_or(0);
            if status & RXD_STAT_DD == 0 {
                break;
            }
            let len = k
                .mem_read(ctx, desc + 8, 2)
                .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0) as u64;
            // Check the generator's sequence number (first 8 bytes).
            let buf = self.cfg.buf_va + (self.head as u64) * 0x4000;
            if len >= 8 {
                let seq = k
                    .mem_read(ctx, buf, 8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                if seq != self.next_seq {
                    self.stats.seq_errors += 1;
                }
                if len > 8 {
                    // The generator fills the payload with the low
                    // sequence byte; anything else is corruption.
                    let fill = k.mem_read(ctx, buf + 8, 1).map(|b| b[0]).unwrap_or(0);
                    if fill != (seq & 0xff) as u8 {
                        self.stats.corrupt_errors += 1;
                    }
                }
                self.next_seq = seq + 1;
            }
            k.charge(self.per_packet_cost);
            self.stats.packets += 1;
            self.stats.bytes += len;

            // Recycle the descriptor and advance the tail.
            k.mem_write_u32(ctx, desc + 12, 0);
            let tail = self.head; // previous head becomes the new tail
            self.head = (self.head + 1) % self.cfg.ring_entries;
            self.mmio_write(k, ctx, regs::RDT, tail);
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::root::{RootOps, RootPm};
    use nova_core::obj::MemRights;
    use nova_core::{KernelConfig, RunOutcome};
    use nova_hw::machine::{Machine, MachineConfig};
    use nova_hw::nic::{Nic, Stream};

    fn boot() -> (Kernel, nova_core::CompId) {
        let m = Machine::new(MachineConfig::core_i7(64 << 20));
        let mut k = Kernel::new(m, KernelConfig::default());
        let (rc, re) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
        k.start_component(rc, re);
        let root_ctx = k.component_mut::<RootPm>(rc).unwrap().ctx.unwrap();

        let cfg = NetDriverConfig::standard();
        let nic_dev = k.machine.dev.nic;
        let mut ops = RootOps::new(&mut k, root_ctx);
        let (sel, pd) = ops.create_pd("net", None).unwrap();
        // MMIO window (4 pages).
        ops.grant_mem(
            sel,
            nova_hw::machine::NIC_BASE / 4096,
            4,
            MemRights::RW,
            cfg.mmio_va / 4096,
        )
        .unwrap();
        // Ring page + 64 buffers x 16 KB = 256 pages, DMA-able.
        ops.grant_mem(sel, 0x600, 1, MemRights::RW_DMA, cfg.ring_va / 4096)
            .unwrap();
        ops.grant_mem(sel, 0x700, 256, MemRights::RW_DMA, cfg.buf_va / 4096)
            .unwrap();
        ops.grant_gsi(sel, cfg.gsi).unwrap();
        ops.assign_device(sel, nic_dev).unwrap();

        let (comp, ec) = k.load_component(pd, 0, Box::new(NetDriver::new(cfg)));
        k.start_component(comp, ec);
        (k, comp)
    }

    fn start_traffic(k: &mut Kernel, packets: u64, bytes: u32, interarrival: u64) {
        let dev = k.machine.dev.nic;
        k.machine
            .bus
            .typed_mut::<Nic>(dev)
            .unwrap()
            .set_stream(Stream {
                packet_bytes: bytes,
                interarrival,
                remaining: packets,
            });
        k.machine.bus.events.schedule(
            k.machine.clock + interarrival,
            nova_hw::event::Event {
                device: dev,
                token: 1, // EV_PACKET
            },
        );
    }

    #[test]
    fn receives_stream_without_loss() {
        let (mut k, comp) = boot();
        start_traffic(&mut k, 50, 1472, 20_000);
        let out = k.run(Some(500_000_000));
        assert_eq!(out, RunOutcome::Idle);
        let stats = k.component_mut::<NetDriver>(comp).unwrap().stats;
        assert_eq!(stats.packets, 50);
        assert_eq!(stats.bytes, 50 * 1472);
        assert_eq!(stats.seq_errors, 0, "in-order, lossless");
        assert!(
            stats.irqs < 50,
            "interrupt coalescing merged deliveries ({} irqs)",
            stats.irqs
        );
        let dev = k.machine.dev.nic;
        let nic = k.machine.bus.typed_mut::<Nic>(dev).unwrap();
        assert_eq!(nic.rx_dropped, 0);
    }

    /// Injected wire faults are *detected*, never silently absorbed:
    /// every dropped packet is missing from the receive count and
    /// every corrupted one fails the payload-integrity check.
    #[test]
    fn injected_drops_and_corruption_detected() {
        use nova_hw::fault::{FaultKind, FaultPlan};
        let (mut k, comp) = boot();
        k.machine.set_fault_plan(
            FaultPlan::seeded(11)
                .with(FaultKind::NicPacketDrop, 4000, 4)
                .with(FaultKind::NicPacketCorrupt, 4000, 4),
        );
        start_traffic(&mut k, 200, 256, 20_000);
        let out = k.run(Some(8_000_000_000));
        assert_eq!(out, RunOutcome::Idle);

        let dropped = k.machine.faults().count(FaultKind::NicPacketDrop);
        let corrupted = k.machine.faults().count(FaultKind::NicPacketCorrupt);
        assert!(dropped > 0 && corrupted > 0, "plan actually fired");

        let stats = k.component_mut::<NetDriver>(comp).unwrap().stats;
        // Conservation: received + dropped accounts for every packet.
        assert_eq!(stats.packets + dropped, 200);
        // Every drop shows up as a sequence gap (gaps of consecutive
        // drops merge, so this is a lower bound of one per run).
        assert!(stats.seq_errors >= 1 && stats.seq_errors <= dropped);
        // Every corruption is caught by the integrity check.
        assert_eq!(stats.corrupt_errors, corrupted);
    }

    #[test]
    fn dma_is_confined_by_iommu() {
        let (mut k, _comp) = boot();
        start_traffic(&mut k, 10, 64, 10_000);
        k.run(Some(100_000_000));
        assert!(
            k.machine.bus.iommu.faults.is_empty(),
            "all NIC DMA hit delegated pages"
        );
        // Packets landed in the *driver's* frames (0x700..), nowhere else.
        assert_eq!(k.machine.mem.read_u64(0x700 * 4096), 0, "seq 0 packet");
    }
}
