//! IPC protocol definitions shared by the user-level services and
//! their clients (each service exposes portals; clients hold portal
//! capabilities delegated by the root partition manager).

/// Disk-server protocol.
pub mod disk {
    /// Portal id: channel registration. Message: no words; transfer
    /// items delegate (a) one completion-ring page RW and (b) an UP
    /// capability for the client's completion semaphore at the
    /// server-designated selectors. Reply word 0: client id.
    pub const PORTAL_REGISTER: u64 = 1;

    /// Portal id: request submission. Message words:
    /// `[client, op, lba, sectors, tag, ctx, nsegs, (addr, bytes) ×
    /// nsegs]` — a scatter-gather list of up to [`MAX_SEGMENTS`]
    /// segments. Each `addr` is a byte address in the server's window
    /// (so unaligned guest buffers carry their in-page offset),
    /// `bytes` its length; the lengths must sum to `sectors * 512`.
    /// `ctx` is the request's causal trace context (0 = none): the
    /// server runs the request's accept/issue/complete work under it
    /// so its trace spans stitch into the originating request's tree.
    /// Transfer items delegate the DMA buffer pages covering every
    /// segment. Reply word 0: status ([`OK`] or [`EBUSY`]).
    pub const PORTAL_REQUEST: u64 = 2;

    /// Portal id: batched request submission — the one-exit-per-batch
    /// path behind the paravirtual ring. Message words:
    /// `[client, count, (op, lba, sectors, tag, ctx, nsegs,
    /// (addr, bytes) × nsegs) × count]`, each entry shaped exactly
    /// like a [`PORTAL_REQUEST`] body (each entry carries its own
    /// trace context). Entries are accepted in order; reply words:
    /// `[status, accepted]` where entries `0..accepted` were accepted
    /// and `status` is [`OK`] when all were, otherwise the reason
    /// entry `accepted` was refused ([`EBUSY`] or [`EINVAL`]).
    pub const PORTAL_BATCH: u64 = 3;

    /// Read operation.
    pub const OP_READ: u64 = 1;
    /// Write operation.
    pub const OP_WRITE: u64 = 2;

    /// Request accepted / completed fine.
    pub const OK: u64 = 0;
    /// Too many outstanding requests (client throttled — the
    /// denial-of-service countermeasure of Section 4.2).
    pub const EBUSY: u64 = 1;
    /// Malformed request.
    pub const EINVAL: u64 = 2;

    /// Completion-ring layout: a page of 16-byte records
    /// `[tag, status, bytes, _]` (u32 each), with a producer counter in
    /// the last dword of the page.
    pub const RING_RECORDS: usize = 254;

    /// Maximum requests a client may have outstanding before EBUSY.
    pub const MAX_OUTSTANDING: usize = 8;

    /// Maximum scatter-gather segments per request (bounds the
    /// server's PRDT against a hostile client and keeps a batch of
    /// single-segment requests inside one UTCB).
    pub const MAX_SEGMENTS: usize = 8;

    /// Maximum entries in one [`PORTAL_BATCH`] submission (one batch
    /// fills the outstanding budget exactly).
    pub const MAX_BATCH: usize = MAX_OUTSTANDING;

    /// Maximum sectors per request (bounds the server's PRDT math
    /// against arithmetic overflow from a hostile client).
    pub const MAX_SECTORS: u64 = 1024;

    /// Maximum registered clients per server instance (bounds channel
    /// state a client population can make the server allocate).
    pub const MAX_CLIENTS: usize = 16;

    /// Completion-ring status: the request failed at the device (task
    /// file error) and exhausted the server's retry budget.
    pub const STATUS_ERROR: u32 = 1;

    /// Selector where a client finds the registration portal
    /// capability (delegated by the server at launch and again after
    /// every supervised restart).
    pub const CLIENT_SEL_REG: usize = 0x44;
    /// Selector where a client finds the request portal capability.
    pub const CLIENT_SEL_REQ: usize = 0x45;
    /// Selector where a client finds the batch-submission portal
    /// capability ([`PORTAL_BATCH`]).
    pub const CLIENT_SEL_BATCH: usize = 0x46;
}

/// Log-service protocol.
pub mod log {
    /// Portal id: write bytes. Message words: one byte per word.
    /// Reply word 0: bytes written.
    pub const PORTAL_WRITE: u64 = 1;
}
