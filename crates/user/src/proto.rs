//! IPC protocol definitions shared by the user-level services and
//! their clients (each service exposes portals; clients hold portal
//! capabilities delegated by the root partition manager).

/// Disk-server protocol.
pub mod disk {
    /// Portal id: channel registration. Message: no words; transfer
    /// items delegate (a) one completion-ring page RW and (b) an UP
    /// capability for the client's completion semaphore at the
    /// server-designated selectors. Reply word 0: client id.
    pub const PORTAL_REGISTER: u64 = 1;

    /// Portal id: request submission. Message words:
    /// `[client, op, lba, sectors, window_page, tag]`; transfer items
    /// delegate the DMA buffer pages at `window_page`. Reply word 0:
    /// status ([`OK`] or [`EBUSY`]).
    pub const PORTAL_REQUEST: u64 = 2;

    /// Read operation.
    pub const OP_READ: u64 = 1;
    /// Write operation.
    pub const OP_WRITE: u64 = 2;

    /// Request accepted / completed fine.
    pub const OK: u64 = 0;
    /// Too many outstanding requests (client throttled — the
    /// denial-of-service countermeasure of Section 4.2).
    pub const EBUSY: u64 = 1;
    /// Malformed request.
    pub const EINVAL: u64 = 2;

    /// Completion-ring layout: a page of 16-byte records
    /// `[tag, status, bytes, _]` (u32 each), with a producer counter in
    /// the last dword of the page.
    pub const RING_RECORDS: usize = 254;

    /// Maximum requests a client may have outstanding before EBUSY.
    pub const MAX_OUTSTANDING: usize = 8;
}

/// Log-service protocol.
pub mod log {
    /// Portal id: write bytes. Message words: one byte per word.
    /// Reply word 0: bytes written.
    pub const PORTAL_WRITE: u64 = 1;
}
