//! Log service: a minimal user-level driver for the serial port,
//! demonstrating the driver pattern — a deprivileged domain holding
//! only the UART's I/O ports, reached through a portal.

use nova_core::{CompCtx, Component, Kernel, Utcb};
use nova_trace::Kind as TraceKind;
use nova_x86::insn::OpSize;

use crate::proto::log as proto;

/// The log-service component.
#[derive(Default)]
pub struct LogService {
    /// Bytes written since start.
    pub written: u64,
    base: u16,
}

impl LogService {
    /// Creates the service driving the UART at `base` (COM1 in the
    /// standard layout).
    pub fn new(base: u16) -> LogService {
        LogService { written: 0, base }
    }
}

impl Component for LogService {
    fn name(&self) -> &str {
        "log-service"
    }

    fn on_call(&mut self, k: &mut Kernel, ctx: CompCtx, portal_id: u64, utcb: &mut Utcb) {
        let at = k.now();
        let pd = ctx.pd.0 as u64;
        if portal_id != proto::PORTAL_WRITE {
            // An unknown portal is a client-side protocol error: keep
            // the zero-bytes reply, but record the event instead of
            // dropping it silently.
            k.machine
                .bus
                .trace
                .emit(0, ctx.pd.0 as u16, TraceKind::BadPortal, portal_id, at);
            k.machine.bus.trace.metrics.add("bad_portal", pd, 1);
            utcb.set_msg(&[0]);
            return;
        }
        let mut n = 0u64;
        // Wait for the transmitter (LSR bit 5), then write each byte.
        for i in 0..utcb.len_words() {
            let byte = utcb.word(i) as u8;
            let lsr = k.dev_io_read(ctx, self.base + 5, OpSize::Byte);
            if lsr.is_none_or(|v| v & 0x20 == 0) {
                break;
            }
            if !k.dev_io_write(ctx, self.base, OpSize::Byte, byte as u32) {
                break;
            }
            n += 1;
        }
        self.written += n;
        let at = k.now();
        k.machine
            .bus
            .trace
            .emit(0, ctx.pd.0 as u16, TraceKind::LogWrite, n, at);
        if k.machine.bus.trace.active() {
            k.machine.bus.trace.metrics.add("log_bytes", pd, n);
        }
        utcb.set_msg(&[n]);
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::root::{RootOps, RootPm};
    use nova_core::{Hypercall, KernelConfig};
    use nova_hw::machine::{Machine, MachineConfig};
    use nova_hw::serial::COM1;

    #[test]
    fn logs_reach_the_uart_only_with_ports() {
        let m = Machine::new(MachineConfig::core_i7(32 << 20));
        let mut k = Kernel::new(m, KernelConfig::default());
        let (rc, re) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
        k.start_component(rc, re);
        let root_ctx = k.component_mut::<RootPm>(rc).unwrap().ctx.unwrap();

        let mut ops = RootOps::new(&mut k, root_ctx);
        let (sel, pd) = ops.create_pd("log", None).unwrap();
        let (comp, ec) = k.load_component(pd, 0, Box::new(LogService::new(COM1)));
        k.start_component(comp, ec);
        let svc_ctx = CompCtx { pd, ec, comp };
        k.hypercall(
            svc_ctx,
            Hypercall::CreatePt {
                ec: nova_core::kernel::SEL_SELF_EC,
                mtd: 0,
                id: proto::PORTAL_WRITE,
                dst: 0x20,
            },
        )
        .unwrap();

        // Without the ports, writes fail silently (0 written).
        let mut utcb = Utcb::new();
        utcb.set_msg(&[b'h' as u64, b'i' as u64]);
        k.ipc_call(svc_ctx, 0x20, &mut utcb).unwrap();
        assert_eq!(utcb.word(0), 0, "no I/O space, no output");

        // Root grants the UART; now it works.
        let mut ops = RootOps::new(&mut k, root_ctx);
        ops.grant_io(sel, COM1, 8).unwrap();
        let mut utcb = Utcb::new();
        utcb.set_msg(&[b'h' as u64, b'i' as u64]);
        k.ipc_call(svc_ctx, 0x20, &mut utcb).unwrap();
        assert_eq!(utcb.word(0), 2);
        assert_eq!(k.machine.serial_text(), "hi");
    }

    #[test]
    fn unknown_portal_is_counted_not_swallowed() {
        let m = Machine::new(MachineConfig::core_i7(32 << 20));
        let mut k = Kernel::new(m, KernelConfig::default());
        let (rc, re) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
        k.start_component(rc, re);
        let root_ctx = k.component_mut::<RootPm>(rc).unwrap().ctx.unwrap();

        let mut ops = RootOps::new(&mut k, root_ctx);
        let (_sel, pd) = ops.create_pd("log", None).unwrap();
        let (comp, ec) = k.load_component(pd, 0, Box::new(LogService::new(COM1)));
        k.start_component(comp, ec);
        let svc_ctx = CompCtx { pd, ec, comp };
        // A portal whose id is not PORTAL_WRITE: calls through it used
        // to be silently answered with 0 and left no record at all.
        k.hypercall(
            svc_ctx,
            Hypercall::CreatePt {
                ec: nova_core::kernel::SEL_SELF_EC,
                mtd: 0,
                id: proto::PORTAL_WRITE + 7,
                dst: 0x21,
            },
        )
        .unwrap();

        let mut utcb = Utcb::new();
        utcb.set_msg(&[b'x' as u64]);
        k.ipc_call(svc_ctx, 0x21, &mut utcb).unwrap();
        assert_eq!(utcb.word(0), 0, "unknown portal writes nothing");
        let m = k
            .machine
            .tracer()
            .metrics
            .get("bad_portal", pd.0 as u64)
            .expect("bad_portal recorded even with tracing off");
        assert_eq!(m.count, 1);
    }
}
