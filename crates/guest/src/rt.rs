//! Guest runtime: memory-layout constants and code-emission helpers
//! shared by every workload (IDT construction, PIC programming,
//! paging bring-up, the AHCI and console drivers).

use nova_x86::insn::{AluOp, Cond, MemRef};
use nova_x86::reg::{Reg, Reg8};
use nova_x86::Asm;

/// Guest-physical memory layout.
pub mod layout {
    /// Boot-information block written by the virtual BIOS.
    pub const BOOT_INFO: u32 = 0x500;
    /// IDT (256 × 8-byte gates).
    pub const IDT: u32 = 0x1000;
    /// IDT descriptor (limit + base) for LIDT.
    pub const IDT_DESC: u32 = 0x1800;
    /// Kernel variables (see [`super::vars`]).
    pub const VARS: u32 = 0x1900;
    /// Boot page directory.
    pub const BOOT_PD: u32 = 0x2000;
    /// Per-task page directories (two, rotated).
    pub const TASK_PD: [u32; 2] = [0x4000, 0x5000];
    /// AHCI command list.
    pub const DISK_CMD: u32 = 0x30000;
    /// AHCI command table.
    pub const DISK_CTBA: u32 = 0x31000;
    /// Default disk DMA buffer.
    pub const DISK_BUF: u32 = 0x38000;
    /// NIC receive-descriptor ring.
    pub const NIC_RING: u32 = 0x40000;
    /// Paravirtual disk ring page (shared with the VMM backend).
    pub const PV_DISK_RING: u32 = 0x42000;
    /// Paravirtual net ring (two pages: shared + backend-private).
    pub const PV_NET_RING: u32 = 0x44000;
    /// Paravirtual disk DMA buffers (one batch's worth).
    pub const PV_DISK_BUF: u32 = 0x48000;
    /// NIC packet buffers (16 KB each, up to 256 of them at 8 MB).
    pub const NIC_BUF: u32 = 0x80_0000;
    /// Frame pool for demand paging.
    pub const FRAME_POOL: u32 = 0x40_0000;
    /// Kernel code load address (1 MB).
    pub const CODE: u32 = 0x10_0000;
    /// Initial stack top.
    pub const STACK: u32 = 0x9_0000;
    /// Task working-set virtual base (above the kernel identity map).
    pub const TASK_VA: u32 = 0x1000_0000;
}

/// Offsets of kernel variables within [`layout::VARS`].
pub mod vars {
    /// Timer tick counter.
    pub const TICKS: u32 = 0;
    /// Disk-completion flag.
    pub const DISK_DONE: u32 = 4;
    /// Demand-paging frame bump pointer.
    pub const NEXT_FRAME: u32 = 8;
    /// Current page-directory physical address.
    pub const CUR_PD: u32 = 12;
    /// Packets received (netload).
    pub const PKT_COUNT: u32 = 16;
    /// NIC ring head index.
    pub const RX_HEAD: u32 = 20;
    /// Bytes received (netload).
    pub const RX_BYTES: u32 = 24;
    /// TLB-shootdown acknowledgement counter (MP).
    pub const SHOOT_ACK: u32 = 28;
    /// Application-processor liveness counter (MP).
    pub const AP_COUNT: u32 = 32;
    /// Scratch.
    pub const SCRATCH: u32 = 36;
    /// Paravirtual ring producer slot (next descriptor/entry index,
    /// wraps at the ring capacity).
    pub const PV_SLOT: u32 = 40;
    /// Paravirtual disk LBA cursor.
    pub const PV_LBA: u32 = 44;
    /// Paravirtual auxiliary counter (net buffer index).
    pub const PV_AUX: u32 = 48;
}

/// Address of a kernel variable.
pub fn var(off: u32) -> MemRef {
    MemRef::abs(layout::VARS + off)
}

/// Number of 4 MB kernel identity mappings in the boot page directory
/// (64 MB).
pub const KERNEL_PDES: u32 = 16;

/// Page-directory index of the 4 MB device window (0xFE80_0000).
pub const DEVICE_PDE: u32 = 0xfe80_0000 >> 22;

/// Emits `out <port>, al` for a known byte value.
pub fn out_byte(a: &mut Asm, port: u16, val: u8) {
    a.mov_r8i(Reg8::Al, val);
    if port < 0x100 {
        a.out_imm_al(port as u8);
    } else {
        a.mov_ri(Reg::Edx, port as u32);
        a.out_dx_al();
    }
}

/// Emits the PIC initialization sequence: remap to vectors 0x20/0x28
/// and program the masks (`0` bit = enabled line).
pub fn emit_pic_init(a: &mut Asm, master_mask: u8, slave_mask: u8) {
    out_byte(a, 0x20, 0x11); // ICW1
    out_byte(a, 0x21, 0x20); // ICW2: offset 0x20
    out_byte(a, 0x21, 0x04); // ICW3
    out_byte(a, 0x21, 0x01); // ICW4
    out_byte(a, 0x21, master_mask);
    out_byte(a, 0xa0, 0x11);
    out_byte(a, 0xa1, 0x28);
    out_byte(a, 0xa1, 0x02);
    out_byte(a, 0xa1, 0x01);
    out_byte(a, 0xa1, slave_mask);
}

/// Emits the master-PIC EOI.
pub fn emit_eoi_master(a: &mut Asm) {
    out_byte(a, 0x20, 0x20);
}

/// Emits EOI to both PICs (for slave interrupts).
pub fn emit_eoi_both(a: &mut Asm) {
    out_byte(a, 0xa0, 0x20);
    out_byte(a, 0x20, 0x20);
}

/// Emits code that fills the whole IDT with `default_handler` and
/// loads IDTR. Clobbers EAX, EBX, ECX, EDI.
pub fn emit_idt_setup(a: &mut Asm, default_handler: nova_x86::asm::Label) {
    a.mov_ri(Reg::Edi, layout::IDT);
    a.mov_ri(Reg::Ecx, 256);
    a.mov_r_label(Reg::Eax, default_handler);
    let top = a.here_label();
    // Low dword: offset[15:0] | selector 8 << 16.
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.alu_ri(AluOp::And, Reg::Ebx, 0xffff);
    a.alu_ri(AluOp::Or, Reg::Ebx, 0x0008_0000);
    a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Ebx);
    // High dword: offset[31:16] | present 32-bit interrupt gate.
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.alu_ri(AluOp::And, Reg::Ebx, 0xffff_0000);
    a.alu_ri(AluOp::Or, Reg::Ebx, 0x8e00);
    a.mov_mr(MemRef::base_disp(Reg::Edi, 4), Reg::Ebx);
    a.add_ri(Reg::Edi, 8);
    a.dec_r(Reg::Ecx);
    a.jcc(Cond::Ne, top);

    // Descriptor: limit 0x7ff, base IDT.
    a.mov_mi(MemRef::abs(layout::IDT_DESC), 0x07ff | (layout::IDT << 16));
    a.mov_mi(MemRef::abs(layout::IDT_DESC + 4), layout::IDT >> 16);
    a.lidt(MemRef::abs(layout::IDT_DESC));
}

/// Emits code installing `handler` for `vector`. Clobbers EAX, EBX.
pub fn emit_idt_install(a: &mut Asm, vector: u8, handler: nova_x86::asm::Label) {
    let gate = layout::IDT + vector as u32 * 8;
    a.mov_r_label(Reg::Eax, handler);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.alu_ri(AluOp::And, Reg::Ebx, 0xffff);
    a.alu_ri(AluOp::Or, Reg::Ebx, 0x0008_0000);
    a.mov_mr(MemRef::abs(gate), Reg::Ebx);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.alu_ri(AluOp::And, Reg::Ebx, 0xffff_0000);
    a.alu_ri(AluOp::Or, Reg::Ebx, 0x8e00);
    a.mov_mr(MemRef::abs(gate + 4), Reg::Ebx);
}

/// Emits paging bring-up: identity-maps the first [`KERNEL_PDES`] ×
/// 4 MB with PSE large pages in the boot page directory, then enables
/// CR4.PSE and CR0.PG. Clobbers EAX, EBX, ECX, EDI.
pub fn emit_enable_paging(a: &mut Asm) {
    a.mov_ri(Reg::Edi, layout::BOOT_PD);
    a.mov_ri(
        Reg::Eax,
        nova_x86::paging::pte::P | nova_x86::paging::pte::W | nova_x86::paging::pte::PS,
    );
    a.mov_ri(Reg::Ecx, KERNEL_PDES);
    let top = a.here_label();
    a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Eax);
    a.add_ri(Reg::Eax, 4 << 20);
    a.add_ri(Reg::Edi, 4);
    a.dec_r(Reg::Ecx);
    a.jcc(Cond::Ne, top);

    // Identity-map the device window (AHCI/NIC MMIO around
    // 0xFE80_0000) with one 4 MB page, as a real kernel would ioremap.
    a.mov_mi(
        MemRef::abs(layout::BOOT_PD + (DEVICE_PDE * 4)),
        0xfe80_0000
            | nova_x86::paging::pte::P
            | nova_x86::paging::pte::W
            | nova_x86::paging::pte::PS,
    );

    a.mov_mi(var(vars::CUR_PD), layout::BOOT_PD);
    a.mov_ri(Reg::Eax, nova_x86::reg::cr4::PSE);
    a.mov_cr_r(4, Reg::Eax);
    a.mov_ri(Reg::Eax, layout::BOOT_PD);
    a.mov_cr_r(3, Reg::Eax);
    a.mov_r_cr(Reg::Eax, 0);
    a.alu_ri(AluOp::Or, Reg::Eax, nova_x86::reg::cr0::PG);
    a.mov_cr_r(0, Reg::Eax);
}

/// Emits a guest shutdown: `out 0xf4, al` with `code`.
pub fn emit_exit(a: &mut Asm, code: u8) {
    out_byte(a, 0xf4, code);
}

/// Emits a benchmark mark: `out 0xf5, eax` with `value`.
pub fn emit_mark(a: &mut Asm, value: u32) {
    a.mov_ri(Reg::Eax, value);
    a.mov_ri(Reg::Edx, 0xf5);
    a.out_dx_eax();
}

/// Emits a serial console write of one immediate character.
pub fn emit_putc(a: &mut Asm, c: u8) {
    a.mov_r8i(Reg8::Al, c);
    a.mov_ri(Reg::Edx, 0x3f8);
    a.out_dx_al();
}

/// Emits a string to the serial console.
pub fn emit_puts(a: &mut Asm, s: &str) {
    a.mov_ri(Reg::Edx, 0x3f8);
    for c in s.bytes() {
        a.mov_r8i(Reg8::Al, c);
        a.out_dx_al();
    }
}

/// Emits the mask / acknowledge / unmask sequence real PIC drivers
/// run around interrupt handling (Section 8.2: "Masking,
/// acknowledging, and unmasking the interrupt at the virtual
/// interrupt controller causes up to four more VM exits").
pub fn emit_pic_mask_ack_unmask(a: &mut Asm, line: u8) {
    let (data, bit) = if line < 8 {
        (0x21u8, 1u8 << line)
    } else {
        (0xa1, 1 << (line - 8))
    };
    // Mask the line.
    a.in_al_imm(data);
    a.alu_al_imm(AluOp::Or, bit);
    a.out_imm_al(data);
    // Acknowledge.
    if line >= 8 {
        out_byte(a, 0xa0, 0x20);
    }
    out_byte(a, 0x20, 0x20);
    // Unmask the line.
    a.in_al_imm(data);
    a.alu_al_imm(AluOp::And, !bit);
    a.out_imm_al(data);
}

/// Emits the timer interrupt handler: tick counter plus the full PIC
/// mask/ack/unmask sequence. Returns its label. Must be called where
/// fall-through cannot reach (e.g. after an unconditional jump).
pub fn emit_timer_handler(a: &mut Asm) -> nova_x86::asm::Label {
    let l = a.here_label();
    a.push_r(Reg::Eax);
    a.push_r(Reg::Edx);
    a.inc_m(var(vars::TICKS));
    emit_pic_mask_ack_unmask(a, 0);
    a.pop_r(Reg::Edx);
    a.pop_r(Reg::Eax);
    a.iret();
    l
}

/// Emits the default (spurious) interrupt handler.
pub fn emit_default_handler(a: &mut Asm) -> nova_x86::asm::Label {
    let l = a.here_label();
    a.push_r(Reg::Eax);
    a.push_r(Reg::Edx);
    emit_eoi_both(a);
    a.pop_r(Reg::Edx);
    a.pop_r(Reg::Eax);
    a.iret();
    l
}

/// Emits the demand-paging #PF handler: allocates a frame from the
/// pool, maps the faulting page in the current page directory (4 KB
/// granularity), and returns. Page tables are allocated from the same
/// pool and zeroed. Returns the handler label.
pub fn emit_pf_handler(a: &mut Asm) -> nova_x86::asm::Label {
    let l = a.here_label();
    // Frame: [EFLAGS, CS, EIP, ERR] — ERR on top.
    a.push_r(Reg::Eax);
    a.push_r(Reg::Ebx);
    a.push_r(Reg::Ecx);
    a.push_r(Reg::Edx);
    a.push_r(Reg::Edi);

    a.mov_r_cr(Reg::Eax, 2); // faulting address

    // EBX = PDE slot address = cur_pd + (addr >> 22) * 4.
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.shr_ri(Reg::Ebx, 22);
    a.shl_ri(Reg::Ebx, 2);
    a.alu_rm(AluOp::Add, Reg::Ebx, var(vars::CUR_PD));

    // ECX = PDE value.
    a.mov_rm(Reg::Ecx, MemRef::base_disp(Reg::Ebx, 0));
    a.test_rr(Reg::Ecx, Reg::Ecx);
    let have_pt = a.label();
    a.jcc(Cond::Ne, have_pt);

    // Allocate and zero a page table.
    a.mov_rm(Reg::Ecx, var(vars::NEXT_FRAME));
    a.alu_mi(AluOp::Add, var(vars::NEXT_FRAME), 4096);
    a.push_r(Reg::Eax);
    a.mov_rr(Reg::Edi, Reg::Ecx);
    a.xor_rr(Reg::Eax, Reg::Eax);
    a.push_r(Reg::Ecx);
    a.mov_ri(Reg::Ecx, 1024);
    a.rep_stosd();
    a.pop_r(Reg::Ecx);
    a.pop_r(Reg::Eax);
    a.alu_ri(AluOp::Or, Reg::Ecx, 3); // present | writable
    a.mov_mr(MemRef::base_disp(Reg::Ebx, 0), Reg::Ecx);

    a.bind(have_pt);
    // EBX = PTE slot = (PDE & ~0xfff) + ((addr >> 12) & 0x3ff) * 4.
    a.alu_ri(AluOp::And, Reg::Ecx, 0xffff_f000u32);
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.shr_ri(Reg::Ebx, 12);
    a.alu_ri(AluOp::And, Reg::Ebx, 0x3ff);
    a.shl_ri(Reg::Ebx, 2);
    a.alu_rr(AluOp::Add, Reg::Ebx, Reg::Ecx);

    // Frame for the page itself.
    a.mov_rm(Reg::Ecx, var(vars::NEXT_FRAME));
    a.alu_mi(AluOp::Add, var(vars::NEXT_FRAME), 4096);
    a.alu_ri(AluOp::Or, Reg::Ecx, 3);
    a.mov_mr(MemRef::base_disp(Reg::Ebx, 0), Reg::Ecx);

    a.pop_r(Reg::Edi);
    a.pop_r(Reg::Edx);
    a.pop_r(Reg::Ecx);
    a.pop_r(Reg::Ebx);
    a.pop_r(Reg::Eax);
    a.add_ri(Reg::Esp, 4); // discard the error code
    a.iret();
    l
}

/// Emits the disk interrupt handler (slave IRQ 11 → vector 0x2b):
/// acknowledges the virtual controller (read + clear IS/P0IS: the
/// MMIO operations of Section 8.2) and sets the completion flag.
pub fn emit_disk_handler(a: &mut Asm) -> nova_x86::asm::Label {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let l = a.here_label();
    a.push_r(Reg::Eax);
    a.push_r(Reg::Edx);
    // read IS; write-1-clear IS.
    a.mov_rm(Reg::Eax, MemRef::abs(base + regs::IS));
    a.mov_mr(MemRef::abs(base + regs::IS), Reg::Eax);
    // read P0IS; write-1-clear P0IS.
    a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
    a.mov_mr(MemRef::abs(base + regs::P0IS), Reg::Eax);
    // confirm CI cleared.
    a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0CI));
    a.mov_mi(var(vars::DISK_DONE), 1);
    emit_pic_mask_ack_unmask(a, 11);
    a.pop_r(Reg::Edx);
    a.pop_r(Reg::Eax);
    a.iret();
    l
}

/// Emits the paravirtual disk interrupt handler (slave IRQ 9 →
/// vector 0x29): one write-1-to-clear MMIO exit to acknowledge the
/// coalesced completion interrupt, then EOI. Completion state itself
/// lives in the shared ring page — the handler never reads a device
/// register.
pub fn emit_pv_disk_handler(a: &mut Asm) -> nova_x86::asm::Label {
    let base = nova_hw::pv::PV_BASE as u32;
    let l = a.here_label();
    a.push_r(Reg::Eax);
    a.push_r(Reg::Edx);
    a.mov_mi(MemRef::abs(base + nova_hw::pv::regs::DISK_ISR as u32), 1);
    emit_eoi_both(a);
    a.pop_r(Reg::Edx);
    a.pop_r(Reg::Eax);
    a.iret();
    l
}

/// Emits one-time paravirtual disk bring-up: hands the ring page's
/// guest-physical address to the backend (one MMIO exit, ever).
pub fn emit_pv_disk_init(a: &mut Asm) {
    let base = nova_hw::pv::PV_BASE as u32;
    a.mov_mi(
        MemRef::abs(base + nova_hw::pv::regs::DISK_RING as u32),
        layout::PV_DISK_RING,
    );
}

/// Emits a batched paravirtual disk read: fills `batch` descriptors
/// (sequential LBAs from the [`vars::PV_LBA`] cursor, buffers packed
/// from [`layout::PV_DISK_BUF`]), rings the doorbell **once**, and
/// halts until the ring's cumulative `used` counter reaches the
/// target in [`vars::SCRATCH`]. Clobbers EAX, EBX, ECX, EDX, EDI.
pub fn emit_pv_disk_batch_read(a: &mut Asm, batch: u32, sectors: u32) {
    use nova_hw::pv::{disk, regs, PV_BASE};
    let ring = layout::PV_DISK_RING;
    let block_bytes = sectors * 512;

    a.mov_ri(Reg::Ecx, batch);
    a.mov_ri(Reg::Edi, layout::PV_DISK_BUF);
    let fill = a.here_label();
    // EBX = descriptor address = ring + DESC0 + slot * DESC_SIZE.
    a.mov_rm(Reg::Eax, var(vars::PV_SLOT));
    a.mov_rr(Reg::Ebx, Reg::Eax);
    a.shl_ri(Reg::Ebx, 5);
    a.add_ri(Reg::Ebx, ring + disk::DESC0 as u32);
    a.mov_mi(
        MemRef::base_disp(Reg::Ebx, disk::D_OP as i32),
        disk::OP_READ,
    );
    a.mov_mi(MemRef::base_disp(Reg::Ebx, disk::D_SECTORS as i32), sectors);
    a.mov_rm(Reg::Eax, var(vars::PV_LBA));
    a.mov_mr(MemRef::base_disp(Reg::Ebx, disk::D_LBA as i32), Reg::Eax);
    a.mov_mi(MemRef::base_disp(Reg::Ebx, disk::D_LBA as i32 + 4), 0);
    a.mov_mr(MemRef::base_disp(Reg::Ebx, disk::D_BUF as i32), Reg::Edi);
    a.mov_mi(MemRef::base_disp(Reg::Ebx, disk::D_BUF as i32 + 4), 0);
    a.mov_mi(MemRef::base_disp(Reg::Ebx, disk::D_STATUS as i32), 0);
    a.alu_mi(AluOp::Add, var(vars::PV_LBA), sectors);
    // Advance the producer slot, wrapping at the ring capacity.
    a.mov_rm(Reg::Eax, var(vars::PV_SLOT));
    a.inc_r(Reg::Eax);
    a.cmp_ri(Reg::Eax, disk::CAPACITY);
    let no_wrap = a.label();
    a.jcc(Cond::B, no_wrap);
    a.xor_rr(Reg::Eax, Reg::Eax);
    a.bind(no_wrap);
    a.mov_mr(var(vars::PV_SLOT), Reg::Eax);
    a.add_ri(Reg::Edi, block_bytes);
    a.dec_r(Reg::Ecx);
    a.jcc(Cond::Ne, fill);

    // One doorbell MMIO exit for the whole batch.
    a.mov_mi(
        MemRef::abs(PV_BASE as u32 + regs::DISK_DOORBELL as u32),
        batch,
    );

    // Halt until `used` (read from shared memory — no exit) reaches
    // the cumulative completion target. Both sides are the low 32
    // bits of monotonically growing u64 counters, so the comparison
    // must be wraparound-safe: wait while `used - target` is negative
    // (used modularly behind target), not while `used < target` —
    // the ordered compare deadlocks or exits early when either
    // counter crosses the 2^32 boundary.
    a.alu_mi(AluOp::Add, var(vars::SCRATCH), batch);
    let wait = a.here_label();
    a.sti();
    a.hlt();
    a.mov_rm(Reg::Eax, MemRef::abs(ring + disk::USED as u32));
    a.alu_rm(AluOp::Sub, Reg::Eax, var(vars::SCRATCH));
    a.jcc(Cond::S, wait);
}

/// Emits one-time AHCI driver initialization: command-list base and
/// interrupt enable.
pub fn emit_disk_init(a: &mut Asm) {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    a.mov_mi(MemRef::abs(base + regs::P0CLB), layout::DISK_CMD);
    a.mov_mi(MemRef::abs(base + regs::P0CLB2), 0);
    a.mov_mi(MemRef::abs(base + regs::P0IE), 1);
}

/// Emits a synchronous disk read: builds the command (LBA in EAX,
/// sector count in EBX, buffer GPA in ECX), rings the doorbell, and
/// halts until the completion interrupt. Clobbers EAX, EBX, ECX, EDX,
/// EDI.
pub fn emit_disk_read_sync(a: &mut Asm) {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let ctba = layout::DISK_CTBA;

    // Command header slot 0.
    a.mov_mi(MemRef::abs(layout::DISK_CMD), 1 << 16);
    a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), ctba);
    a.mov_mi(MemRef::abs(layout::DISK_CMD + 12), 0);

    // CFIS: 0x27 (H2D), command 0x25 (READ DMA EXT) at byte 2.
    a.mov_mi(MemRef::abs(ctba), 0x0025_0027);
    // LBA bytes 4..6 from EAX (low 24 bits), byte 8.. from EAX >> 24.
    a.mov_rr(Reg::Edi, Reg::Eax);
    a.alu_ri(AluOp::And, Reg::Edi, 0x00ff_ffff);
    a.mov_mr(MemRef::abs(ctba + 4), Reg::Edi);
    a.mov_rr(Reg::Edi, Reg::Eax);
    a.shr_ri(Reg::Edi, 24);
    a.mov_mr(MemRef::abs(ctba + 8), Reg::Edi);
    // Sector count at bytes 12..13 from EBX.
    a.mov_mr(MemRef::abs(ctba + 12), Reg::Ebx);

    // PRDT entry 0: buffer from ECX, byte count = EBX*512 - 1.
    a.mov_mr(MemRef::abs(ctba + 0x80), Reg::Ecx);
    a.mov_mi(MemRef::abs(ctba + 0x84), 0);
    a.mov_rr(Reg::Edi, Reg::Ebx);
    a.shl_ri(Reg::Edi, 9);
    a.dec_r(Reg::Edi);
    a.mov_mr(MemRef::abs(ctba + 0x8c), Reg::Edi);

    // Doorbell, then halt until the handler flags completion.
    a.mov_mi(var(vars::DISK_DONE), 0);
    a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
    let wait = a.here_label();
    a.sti();
    a.hlt();
    a.alu_mi(AluOp::Cmp, var(vars::DISK_DONE), 1);
    a.jcc(Cond::Ne, wait);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_x86::decode::decode;

    /// Every emitted fragment must be decodable by the CPU.
    fn decodes(code: &[u8]) {
        let mut pos = 0;
        while pos < code.len() {
            let i = decode(&code[pos..]).expect("fragment decodes");
            pos += i.len as usize;
        }
    }

    #[test]
    fn fragments_decode() {
        let mut a = Asm::new(layout::CODE);
        emit_pic_init(&mut a, 0xfe, 0xff);
        emit_enable_paging(&mut a);
        emit_disk_init(&mut a);
        a.mov_ri(Reg::Eax, 5);
        a.mov_ri(Reg::Ebx, 1);
        a.mov_ri(Reg::Ecx, layout::DISK_BUF);
        emit_disk_read_sync(&mut a);
        emit_pv_disk_init(&mut a);
        emit_pv_disk_batch_read(&mut a, 8, 8);
        emit_exit(&mut a, 0);
        let h = emit_timer_handler(&mut a);
        let d = emit_default_handler(&mut a);
        let p = emit_pf_handler(&mut a);
        let dk = emit_disk_handler(&mut a);
        let pv = emit_pv_disk_handler(&mut a);
        let _ = (h, d, p, dk, pv);
        decodes(&a.finish());
    }

    #[test]
    fn idt_setup_decodes() {
        let mut a = Asm::new(layout::CODE);
        let end = a.label();
        a.jmp(end);
        let h = emit_default_handler(&mut a);
        a.bind(end);
        emit_idt_setup(&mut a, h);
        emit_idt_install(&mut a, 0x20, h);
        decodes(&a.finish());
    }
}
