//! The kernel-compile-like workload (Section 8.1, Figure 5, Table 2).
//!
//! A compilation run is process churn: for every "compilation unit"
//! the guest OS switches to a fresh address space (CR3 write), demand-
//! faults a working set in (#PF + page-table construction), computes
//! over it (TLB pressure), recycles buffers (INVLPG), takes timer
//! interrupts, and periodically reads a source file from disk. The
//! parameters control the mix, so the harness can reproduce the trap
//! distribution of Table 2:
//!
//! - under nested paging, only the timer/disk I/O traps remain;
//! - under the vTLB, every demand fault costs a fill exit and every
//!   address-space switch a CR exit. With the tagged shadow cache the
//!   switch reuses the cached shadow table (fills track guest faults
//!   ≈ 1:1); in legacy flush-per-switch mode (the monolithic shadow
//!   baselines) every switch rebuilds the shadow table and
//!   context-switch rounds multiply fills over guest faults, giving
//!   the fills ≫ guest-faults structure of the paper's vTLB column.

use nova_x86::insn::{AluOp, Cond, MemRef};
use nova_x86::reg::Reg;
use nova_x86::Asm;

use crate::os::{build_os, OsParams, Program};
use crate::rt::{self, layout, vars, KERNEL_PDES};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct CompileParams {
    /// Number of compilation units (tasks).
    pub tasks: u32,
    /// Pages demand-faulted per task.
    pub task_pages: u32,
    /// Compute passes over the working set per context-switch round.
    pub compute_loops: u32,
    /// Address-space switch rounds per task (re-faulting the working
    /// set into the shadow table under the vTLB).
    pub switches_per_task: u32,
    /// INVLPG operations per task (buffer recycling).
    pub invlpg_per_task: u32,
    /// Read one 4 KB source file from disk every N tasks (0 = never).
    pub disk_every: u32,
    /// Timer divisor (None = no timer interrupts).
    pub timer_divisor: Option<u16>,
}

impl CompileParams {
    /// A short smoke-test run.
    pub fn smoke() -> CompileParams {
        CompileParams {
            tasks: 4,
            task_pages: 16,
            compute_loops: 2,
            switches_per_task: 2,
            invlpg_per_task: 2,
            disk_every: 2,
            timer_divisor: Some(1193),
        }
    }

    /// The benchmark-scale run used by the Figure 5 harness,
    /// calibrated so the trap mix amortizes the way the paper's kernel
    /// compilation does (~1% overhead under EPT+VPID, 20–30% under the
    /// vTLB).
    pub fn bench() -> CompileParams {
        CompileParams {
            tasks: 60,
            task_pages: 96,
            compute_loops: 16,
            switches_per_task: 8,
            invlpg_per_task: 4,
            disk_every: 5,
            timer_divisor: Some(1193),
        }
    }
}

/// First page-directory index of the task VA window.
const TASK_PDE: u32 = layout::TASK_VA >> 22;

/// Emits the per-task page-directory preparation: copy kernel PDEs,
/// clear the task window, commit CR3. Expects the task index in ESI;
/// clobbers everything.
fn emit_switch_address_space(a: &mut Asm) {
    // EBX = TASK_PD[esi & 1].
    a.mov_rr(Reg::Ebx, Reg::Esi);
    a.alu_ri(AluOp::And, Reg::Ebx, 1);
    a.shl_ri(Reg::Ebx, 12);
    a.add_ri(Reg::Ebx, layout::TASK_PD[0]);

    // Copy kernel identity PDEs from the boot directory.
    a.mov_ri(Reg::Esi, layout::BOOT_PD);
    a.mov_rr(Reg::Edi, Reg::Ebx);
    a.mov_ri(Reg::Ecx, KERNEL_PDES);
    a.rep_movsd();

    // Carry the device-window mapping over.
    a.mov_rm(Reg::Eax, MemRef::abs(layout::BOOT_PD + rt::DEVICE_PDE * 4));
    a.mov_mr(
        MemRef::base_disp(Reg::Ebx, (rt::DEVICE_PDE * 4) as i32),
        Reg::Eax,
    );

    // Clear 32 task-window PDEs.
    a.lea(Reg::Edi, MemRef::base_disp(Reg::Ebx, (TASK_PDE * 4) as i32));
    a.xor_rr(Reg::Eax, Reg::Eax);
    a.mov_ri(Reg::Ecx, 32);
    a.rep_stosd();

    // Commit: current PD, fresh frame pool, CR3 (TLB/shadow flush).
    a.mov_mr(rt::var(vars::CUR_PD), Reg::Ebx);
    a.mov_mi(rt::var(vars::NEXT_FRAME), layout::FRAME_POOL);
    a.mov_cr_r(3, Reg::Ebx);
}

/// Builds the workload.
pub fn build(p: CompileParams) -> Program {
    let params = OsParams {
        paging: true,
        pf_handler: true,
        timer_divisor: p.timer_divisor,
        disk: p.disk_every > 0,
        nic: false,
        pv_disk: false,
        pv_net: false,
    };
    build_os(params, |a, _| {
        a.mov_mi(rt::var(vars::SCRATCH), 0); // task counter

        let task_loop = a.here_label();

        // --- New address space for the task ---
        a.mov_rm(Reg::Esi, rt::var(vars::SCRATCH));
        emit_switch_address_space(a);

        // --- Demand-fault the working set (guest page faults) ---
        a.mov_ri(Reg::Edi, layout::TASK_VA);
        a.mov_ri(Reg::Ecx, p.task_pages);
        let touch = a.here_label();
        a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Ecx);
        a.add_ri(Reg::Edi, 4096);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, touch);

        // --- Context-switch rounds: reload CR3 and recompute ---
        a.mov_ri(Reg::Ebp, p.switches_per_task.max(1));
        let round = a.here_label();

        a.mov_rm(Reg::Eax, rt::var(vars::CUR_PD));
        a.mov_cr_r(3, Reg::Eax);

        // Compute pass: strided reads over the working set.
        a.mov_ri(Reg::Edx, p.compute_loops);
        let pass = a.here_label();
        a.mov_ri(Reg::Edi, layout::TASK_VA);
        a.mov_ri(Reg::Ecx, p.task_pages << 6); // 64 reads per page
        a.xor_rr(Reg::Eax, Reg::Eax);
        let inner = a.here_label();
        a.alu_rm(AluOp::Add, Reg::Eax, MemRef::base_disp(Reg::Edi, 0));
        a.add_ri(Reg::Edi, 64);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, inner);
        a.dec_r(Reg::Edx);
        a.jcc(Cond::Ne, pass);

        a.dec_r(Reg::Ebp);
        a.jcc(Cond::Ne, round);

        // --- Buffer recycling: INVLPG a few working-set pages ---
        for i in 0..p.invlpg_per_task {
            a.mov_ri(Reg::Eax, layout::TASK_VA + (i % p.task_pages.max(1)) * 4096);
            a.invlpg(MemRef::base_disp(Reg::Eax, 0));
        }

        // --- Source-file read every `disk_every` tasks ---
        if p.disk_every > 0 {
            a.mov_rm(Reg::Esi, rt::var(vars::SCRATCH));
            a.mov_rr(Reg::Eax, Reg::Esi);
            a.xor_rr(Reg::Edx, Reg::Edx);
            a.mov_ri(Reg::Ecx, p.disk_every);
            a.div_r(Reg::Ecx);
            a.test_rr(Reg::Edx, Reg::Edx);
            let skip = a.label();
            a.jcc(Cond::Ne, skip);
            // Read 8 sectors at LBA = task * 8 into the disk buffer.
            a.mov_rr(Reg::Eax, Reg::Esi);
            a.shl_ri(Reg::Eax, 3);
            a.mov_ri(Reg::Ebx, 8);
            a.mov_ri(Reg::Ecx, layout::DISK_BUF);
            rt::emit_disk_read_sync(a);
            a.bind(skip);
        }

        // --- Next task ---
        a.inc_m(rt::var(vars::SCRATCH));
        a.mov_rm(Reg::Esi, rt::var(vars::SCRATCH));
        a.cmp_ri(Reg::Esi, p.tasks);
        a.jcc(Cond::B, task_loop);

        // Report observed ticks as a benchmark mark.
        a.mov_rm(Reg::Eax, rt::var(vars::TICKS));
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::obj::VmPaging;
    use nova_core::RunOutcome;
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    fn image(p: CompileParams) -> GuestImage {
        let prog = build(p);
        GuestImage {
            bytes: prog.bytes,
            load_gpa: prog.load_gpa,
            entry: prog.entry,
            stack: prog.stack,
        }
    }

    #[test]
    fn compile_workload_runs_under_ept() {
        let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
            image(CompileParams::smoke()),
            8192,
        )));
        let out = sys.run(Some(4_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));
        assert!(sys.vmm().stats.mmio_exits > 0, "vAHCI MMIO exits");
        let c = &sys.k.counters;
        assert_eq!(c.exits_of(8), 0, "no #PF exits under nested paging");
        assert!(c.exits_of(6) > 0, "port I/O exits (PIC/timer)");
        assert!(c.injected_virq > 0, "timer/disk injections");
        assert_eq!(c.disk_ops, 2, "two source-file reads in four tasks");
    }

    #[test]
    fn compile_workload_runs_under_vtlb() {
        let mut cfg = VmmConfig::full_virt(image(CompileParams::smoke()), 8192);
        cfg.paging = VmPaging::Shadow;
        let mut sys = System::build(LaunchOptions::standard(cfg));
        let out = sys.run(Some(40_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));
        let c = &sys.k.counters;
        assert!(c.vtlb_fills > 0, "vTLB fills happened");
        assert!(c.guest_page_faults > 0, "demand faults forwarded");
        assert!(c.vtlb_flushes > 0, "CR3 switches flushed the shadow");
        assert!(
            c.vtlb_fills > c.guest_page_faults,
            "fills ({}) outnumber guest faults ({}) — the Table 2 shape",
            c.vtlb_fills,
            c.guest_page_faults
        );
        assert!(c.exits_of(5) > 0, "CR read/write exits under vTLB");
        assert!(c.exits_of(4) > 0, "INVLPG exits under vTLB");
    }

    #[test]
    fn vtlb_has_several_fold_more_exits_than_ept() {
        let mut ept = System::build(LaunchOptions::standard(VmmConfig::full_virt(
            image(CompileParams::smoke()),
            8192,
        )));
        ept.run(Some(40_000_000_000));
        let ept_exits = ept.k.counters.total_exits();

        let mut cfg = VmmConfig::full_virt(image(CompileParams::smoke()), 8192);
        cfg.paging = VmPaging::Shadow;
        let mut vtlb = System::build(LaunchOptions::standard(cfg));
        vtlb.run(Some(40_000_000_000));
        let vtlb_exits = vtlb.k.counters.total_exits();

        // Nested paging eliminates the fill/CR/INVLPG exit classes
        // entirely, so the vTLB still takes several times more exits.
        // The gap used to be >10x when every CR3 write rebuilt the
        // shadow table; the tagged shadow cache reuses shadows across
        // address-space switches (measured ~6.5x on this workload), so
        // the bound reflects the cached vTLB with headroom.
        assert!(
            vtlb_exits > 3 * ept_exits,
            "nested paging eliminates most exits: vtlb {vtlb_exits} vs ept {ept_exits}"
        );
        assert!(
            vtlb.k.counters.vtlb_switch_hits > 0,
            "the narrowed gap comes from shadow-cache hits on CR3 reloads"
        );
    }
}
