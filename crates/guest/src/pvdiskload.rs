//! The batched paravirtual disk-read workload (the "virtual" — i.e.
//! paravirtualized — column of Figure 6): the same sequential
//! direct-I/O access pattern as [`crate::diskload`], but driven
//! through the shared-memory descriptor ring of [`nova_hw::pv`]. The
//! guest publishes a whole batch of requests, rings the doorbell
//! once, and halts until the ring's `used` counter catches up —
//! replacing the ~6 MMIO exits per request of the trap-and-emulate
//! AHCI path with roughly one exit per *batch*.

use nova_x86::insn::{AluOp, Cond, MemRef};
use nova_x86::reg::Reg;

use crate::os::{build_os, OsParams, Program};
use crate::rt::{self, layout};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct PvDiskLoadParams {
    /// Number of read requests (rounded up to a whole batch).
    pub requests: u32,
    /// Block size in bytes (must be a multiple of 512).
    pub block_bytes: u32,
    /// Requests per doorbell.
    pub batch: u32,
}

impl PvDiskLoadParams {
    /// A short smoke run.
    pub fn smoke() -> PvDiskLoadParams {
        PvDiskLoadParams {
            requests: 8,
            block_bytes: 4096,
            batch: 8,
        }
    }
}

/// Builds the workload.
pub fn build(p: PvDiskLoadParams) -> Program {
    assert_eq!(p.block_bytes % 512, 0);
    assert!(p.batch >= 1 && p.batch <= nova_hw::pv::disk::CAPACITY);
    let sectors = p.block_bytes / 512;
    let batches = p.requests.div_ceil(p.batch);
    let params = OsParams {
        pv_disk: true,
        ..OsParams::minimal()
    };
    build_os(params, |a, _| {
        rt::emit_mark(a, 0x1000); // benchmark start
        a.mov_ri(Reg::Esi, 0); // batch counter

        let batch_top = a.here_label();
        rt::emit_pv_disk_batch_read(a, p.batch, sectors);

        // Per-request kernel work plus a checksum pass over the whole
        // batch — the same per-byte cost as the trap-and-emulate
        // workload, so the two columns differ only in exit structure.
        a.mov_ri(Reg::Ecx, 2500 * p.batch);
        let spin = a.here_label();
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, spin);
        a.mov_ri(Reg::Edi, layout::PV_DISK_BUF);
        a.mov_ri(Reg::Ecx, p.batch * p.block_bytes / 4);
        let sum = a.here_label();
        a.alu_rm(AluOp::Add, Reg::Eax, MemRef::base_disp(Reg::Edi, 0));
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, sum);

        a.inc_r(Reg::Esi);
        a.cmp_ri(Reg::Esi, batches);
        a.jcc(Cond::B, batch_top);

        // Any error completion fails the run.
        a.mov_rm(
            Reg::Eax,
            MemRef::abs(layout::PV_DISK_RING + nova_hw::pv::disk::ERRORS as u32),
        );
        a.test_rr(Reg::Eax, Reg::Eax);
        let clean = a.label();
        a.jcc(Cond::E, clean);
        rt::emit_exit(a, 1);
        a.bind(clean);

        rt::emit_mark(a, 0x1001); // benchmark end
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::RunOutcome;
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    fn image(p: PvDiskLoadParams) -> GuestImage {
        let prog = build(p);
        GuestImage {
            bytes: prog.bytes,
            load_gpa: prog.load_gpa,
            entry: prog.entry,
            stack: prog.stack,
        }
    }

    #[test]
    fn batched_reads_complete_with_correct_data() {
        let p = PvDiskLoadParams {
            requests: 16,
            block_bytes: 4096,
            batch: 8,
        };
        let mut cfg = VmmConfig::full_virt(image(p), 4096);
        cfg.pv_disk = true;
        let mut sys = System::build(LaunchOptions::standard(cfg));
        let out = sys.run(Some(20_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));

        // The disk server wrote straight into guest memory: check the
        // last block of the second batch against the disk pattern.
        let host = 0x1000 * 4096 + (layout::PV_DISK_BUF + 7 * 4096) as u64;
        let got = sys.k.machine.mem.read_bytes(host, 16);
        let lba_last = 15 * (4096 / 512);
        let expect = sys.k.machine.ahci().sector(lba_last);
        assert_eq!(got, expect[..16].to_vec());

        // Exit structure: two doorbells (one per batch), far fewer
        // MMIO exits than 16 trap-and-emulate requests would cost
        // (~6 each).
        assert_eq!(sys.vmm().dev().pvdisk.doorbells, 2);
        assert_eq!(sys.vmm().dev().pvdisk.completions, 16);
        assert_eq!(sys.vmm().dev().pvdisk.errors, 0);
        let mmio = sys.k.counters.exits_of(7);
        assert!(mmio < 16, "16 requests took {mmio} MMIO exits");
        assert_eq!(sys.k.machine.marks().len(), 2);
    }
}
