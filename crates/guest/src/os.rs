//! The miniature guest operating system: boot, IDT, PIC remap,
//! optional paging with demand-fault handling, optional timer and disk
//! driver bring-up — then a workload body, then shutdown.

use nova_x86::Asm;

use crate::rt::{self, layout, vars};

/// A built guest program, ready for the virtual BIOS.
#[derive(Clone, Debug)]
pub struct Program {
    /// Raw machine code.
    pub bytes: Vec<u8>,
    /// Guest-physical load address.
    pub load_gpa: u64,
    /// Entry point.
    pub entry: u32,
    /// Initial stack top.
    pub stack: u32,
}

/// Guest OS feature selection.
#[derive(Clone, Copy, Debug)]
pub struct OsParams {
    /// Enable paging (4 MB kernel identity map + CR3 infrastructure).
    pub paging: bool,
    /// Install the demand-paging #PF handler.
    pub pf_handler: bool,
    /// Program the timer with this divisor (None = no timer).
    pub timer_divisor: Option<u16>,
    /// Initialize the AHCI driver and unmask its interrupt.
    pub disk: bool,
    /// Unmask the NIC interrupt (the workload installs its handler).
    pub nic: bool,
    /// Initialize the paravirtual batched disk driver (shared ring +
    /// doorbell) and unmask its interrupt.
    pub pv_disk: bool,
    /// Unmask the paravirtual NIC interrupt (the workload installs
    /// its handler and posts the ring).
    pub pv_net: bool,
}

impl OsParams {
    /// A minimal unpaged OS with no devices.
    pub fn minimal() -> OsParams {
        OsParams {
            paging: false,
            pf_handler: false,
            timer_divisor: None,
            disk: false,
            nic: false,
            pv_disk: false,
            pv_net: false,
        }
    }
}

/// Interrupt vector of the timer (PIC line 0 after remap).
pub const VEC_TIMER: u8 = 0x20;
/// Interrupt vector of the AHCI controller (line 11).
pub const VEC_DISK: u8 = 0x2b;
/// Interrupt vector of the NIC (line 10).
pub const VEC_NIC: u8 = 0x2a;
/// Interrupt vector of the paravirtual disk queue (line 9).
pub const VEC_PV_DISK: u8 = 0x29;

/// Handler labels the body may wire further vectors to.
pub struct OsLabels {
    /// The default (spurious) handler.
    pub default_handler: nova_x86::asm::Label,
}

/// Builds the guest OS around a workload `body`. The body runs with
/// the machine initialized per `params`; falling out of the body shuts
/// the guest down with exit code 0.
pub fn build_os(params: OsParams, body: impl FnOnce(&mut Asm, &OsLabels)) -> Program {
    let mut a = Asm::new(layout::CODE);

    // Handlers live behind the entry jump.
    let start = a.label();
    a.jmp(start);

    let default_handler = rt::emit_default_handler(&mut a);
    let timer_handler = rt::emit_timer_handler(&mut a);
    let pf_handler = rt::emit_pf_handler(&mut a);
    let disk_handler = rt::emit_disk_handler(&mut a);
    let pv_disk_handler = rt::emit_pv_disk_handler(&mut a);

    a.bind(start);
    a.cld();
    a.mov_ri(nova_x86::Reg::Esp, layout::STACK);

    rt::emit_idt_setup(&mut a, default_handler);
    if params.timer_divisor.is_some() {
        rt::emit_idt_install(&mut a, VEC_TIMER, timer_handler);
    }
    if params.pf_handler {
        rt::emit_idt_install(&mut a, nova_x86::reg::vector::PAGE_FAULT, pf_handler);
    }
    if params.disk {
        rt::emit_idt_install(&mut a, VEC_DISK, disk_handler);
    }
    if params.pv_disk {
        rt::emit_idt_install(&mut a, VEC_PV_DISK, pv_disk_handler);
    }

    // PIC masks: clear bits for enabled lines; the cascade (line 2)
    // must be open for any slave interrupt.
    let mut master_mask: u8 = 0xff;
    let mut slave_mask: u8 = 0xff;
    if params.timer_divisor.is_some() {
        master_mask &= !(1 << 0);
    }
    if params.disk || params.nic || params.pv_disk || params.pv_net {
        master_mask &= !(1 << 2);
    }
    if params.disk {
        slave_mask &= !(1 << (11 - 8));
    }
    if params.nic || params.pv_net {
        slave_mask &= !(1 << (10 - 8));
    }
    if params.pv_disk {
        slave_mask &= !(1 << (9 - 8));
    }
    rt::emit_pic_init(&mut a, master_mask, slave_mask);

    if params.paging {
        rt::emit_enable_paging(&mut a);
    }
    a.mov_mi(rt::var(vars::NEXT_FRAME), layout::FRAME_POOL);

    if params.disk {
        rt::emit_disk_init(&mut a);
    }
    if params.pv_disk {
        rt::emit_pv_disk_init(&mut a);
    }

    if let Some(div) = params.timer_divisor {
        rt::out_byte(&mut a, 0x43, 0x34);
        rt::out_byte(&mut a, 0x40, div as u8);
        rt::out_byte(&mut a, 0x40, (div >> 8) as u8);
    }
    if params.timer_divisor.is_some()
        || params.disk
        || params.nic
        || params.pv_disk
        || params.pv_net
    {
        a.sti();
    }

    body(&mut a, &OsLabels { default_handler });

    rt::emit_exit(&mut a, 0);

    Program {
        bytes: a.finish(),
        load_gpa: layout::CODE as u64,
        entry: layout::CODE,
        stack: layout::STACK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::RunOutcome;
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    fn to_image(p: Program) -> GuestImage {
        GuestImage {
            bytes: p.bytes,
            load_gpa: p.load_gpa,
            entry: p.entry,
            stack: p.stack,
        }
    }

    /// Boots a trivial guest under full virtualization: prints to the
    /// virtual console, writes VGA text, CPUIDs, and exits.
    #[test]
    fn hello_guest_boots_under_full_virtualization() {
        let prog = build_os(OsParams::minimal(), |a, _| {
            rt::emit_puts(a, "hello from the guest\n");
            // CPUID leaf 0 — a mandatory intercept.
            a.mov_ri(nova_x86::Reg::Eax, 0);
            a.cpuid();
            // Write to the direct-mapped VGA window: no exit.
            a.mov_ri(nova_x86::Reg::Ebx, nova_hw::vga::VGA_BASE as u32);
            a.mov_m8i(nova_x86::MemRef::base_disp(nova_x86::Reg::Ebx, 0), b'G');
            rt::emit_exit(a, 42);
        });
        let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
            to_image(prog),
            4096, // 16 MB guest
        )));
        let out = sys.run(Some(2_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(42));
        assert_eq!(sys.vmm().guest_console(), "hello from the guest\n");
        assert!(sys.vmm().stats.cpuid_exits >= 1);
        assert!(sys.vmm().stats.io_exits > 20, "console bytes exit");
        // The VGA write went straight through the nested table.
        assert!(sys.k.machine.vga_text().starts_with('G'));
        // Exit accounting matches Table 2's classes.
        let io = sys.k.counters.exits_of(6);
        assert!(io > 0, "port I/O exits counted");
    }

    /// The same guest runs with paging enabled and a demand-fault
    /// handler: touching unmapped memory self-heals inside the guest.
    #[test]
    fn paged_guest_demand_faults_internally() {
        let params = OsParams {
            paging: true,
            pf_handler: true,
            ..OsParams::minimal()
        };
        let prog = build_os(params, |a, _| {
            // Touch 8 unmapped task pages: 8 guest page faults.
            a.mov_ri(nova_x86::Reg::Edi, layout::TASK_VA);
            a.mov_ri(nova_x86::Reg::Ecx, 8);
            let top = a.here_label();
            a.mov_mi(nova_x86::MemRef::base_disp(nova_x86::Reg::Edi, 0), 0x77);
            a.add_ri(nova_x86::Reg::Edi, 4096);
            a.dec_r(nova_x86::Reg::Ecx);
            a.jcc(nova_x86::Cond::Ne, top);
            // Read one back to prove the mapping works.
            a.mov_rm(nova_x86::Reg::Eax, nova_x86::MemRef::abs(layout::TASK_VA));
            a.cmp_ri(nova_x86::Reg::Eax, 0x77);
            let ok = a.label();
            a.jcc(nova_x86::Cond::E, ok);
            rt::emit_exit(a, 1);
            a.bind(ok);
            rt::emit_exit(a, 7);
        });
        let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
            to_image(prog),
            8192, // 32 MB
        )));
        let out = sys.run(Some(2_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(7));
        // With nested paging, guest page faults cause no VM exits
        // (the nested-paging win of Section 5.3).
        assert_eq!(sys.k.counters.exits_of(8), 0, "no #PF exits under EPT");
    }
}
