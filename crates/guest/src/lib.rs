//! Guest operating system and benchmark workloads, written in the
//! simulated x86 subset via the assembler.
//!
//! The guest OS substitutes for the paper's unmodified Linux 2.6.32:
//! it boots multiboot-style from the virtual BIOS, installs a real IDT
//! and remaps the PICs, optionally enables paging with 4 MB kernel
//! mappings and a demand-paging #PF handler, and drives the AHCI disk
//! controller and the NIC with the same register-level protocols as
//! the host drivers. The workloads reproduce the trap mix of the
//! paper's benchmarks: the kernel-compile-like process churn
//! (Figure 5, Table 2), the direct-I/O disk reader (Figure 6), the UDP
//! receiver (Figure 7), and a multiprocessor TLB-shootdown exercise
//! (Section 7.5).

#![forbid(unsafe_code)]

pub mod compile;
pub mod diskload;
pub mod hostile;
pub mod mp;
pub mod netload;
pub mod os;
pub mod pvdiskload;
pub mod pvnetload;
pub mod rt;

pub use os::{build_os, OsParams, Program};
