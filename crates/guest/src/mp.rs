//! Multiprocessor workload (Section 7.5): the boot processor starts an
//! application processor, then broadcasts inter-processor interrupts
//! for a global TLB shootdown; the VMM recalls the other virtual CPUs
//! to inject the vector, and each handler runs INVLPG locally —
//! exactly the flow the paper describes.

use nova_x86::insn::{Cond, MemRef};
use nova_x86::reg::Reg;

use crate::os::{build_os, OsParams, Program};
use crate::rt::{self, layout, vars};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct MpParams {
    /// TLB-shootdown rounds the BSP broadcasts.
    pub shootdowns: u32,
}

/// The IPI vector used for shootdowns.
pub const VEC_SHOOTDOWN: u8 = 0xfd;

/// Builds the workload (requires a 2-vCPU VM).
pub fn build(p: MpParams) -> Program {
    build_os(OsParams::minimal(), |a, _| {
        let after = a.label();
        a.jmp(after);

        // --- Shootdown handler (runs on the AP) ---
        let handler = a.here_label();
        a.push_r(Reg::Eax);
        a.mov_ri(Reg::Eax, layout::TASK_VA);
        a.invlpg(MemRef::base_disp(Reg::Eax, 0));
        a.inc_m(rt::var(vars::SHOOT_ACK));
        a.pop_r(Reg::Eax);
        a.iret();

        // --- AP entry (page-aligned) ---
        a.align(4096);
        let ap_entry = a.here();
        a.mov_ri(Reg::Esp, layout::STACK - 0x4000);
        // The AP shares the IDT set up by the BSP; load IDTR locally.
        a.lidt(MemRef::abs(layout::IDT_DESC));
        let ap_loop = a.here_label();
        a.inc_m(rt::var(vars::AP_COUNT));
        a.sti();
        a.hlt();
        a.jmp(ap_loop);

        a.bind(after);
        rt::emit_idt_install(a, VEC_SHOOTDOWN, handler);

        // Start the AP: out 0x99, (vcpu 1 << 16) | entry page.
        a.mov_ri(Reg::Eax, (1 << 16) | (ap_entry >> 12));
        a.mov_ri(Reg::Edx, 0x99);
        a.out_dx_eax();

        // Wait until the AP is alive.
        let alive = a.here_label();
        a.mov_rm(Reg::Eax, rt::var(vars::AP_COUNT));
        a.test_rr(Reg::Eax, Reg::Eax);
        a.jcc(Cond::E, alive);

        // Shootdown rounds.
        a.mov_ri(Reg::Esi, 0);
        let round = a.here_label();
        // Broadcast the IPI.
        rt::out_byte(a, 0x9a, VEC_SHOOTDOWN);
        a.inc_r(Reg::Esi);
        // Wait for the acknowledgement count to reach the round count.
        let wait = a.here_label();
        a.mov_rm(Reg::Eax, rt::var(vars::SHOOT_ACK));
        a.cmp_rr(Reg::Eax, Reg::Esi);
        a.jcc(Cond::B, wait);
        a.cmp_ri(Reg::Esi, p.shootdowns);
        a.jcc(Cond::B, round);

        rt::emit_mark(a, 0x3000);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::RunOutcome;
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    #[test]
    fn tlb_shootdown_recalls_and_injects() {
        let prog = build(MpParams { shootdowns: 3 });
        let mut cfg = VmmConfig::full_virt(
            GuestImage {
                bytes: prog.bytes,
                load_gpa: prog.load_gpa,
                entry: prog.entry,
                stack: prog.stack,
            },
            4096,
        );
        cfg.vcpus = 2;
        let mut opts = LaunchOptions::standard(cfg);
        opts.with_disk = false;
        let mut sys = System::build(opts);
        let out = sys.run(Some(40_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));

        // All three shootdowns acknowledged.
        let host_vars = 0x1000 * 4096 + layout::VARS as u64;
        let acks = sys
            .k
            .machine
            .mem
            .read_u32(host_vars + vars::SHOOT_ACK as u64);
        assert_eq!(acks, 3);
        // Recall exits happened (the Section 7.5 mechanism) — or the
        // AP was already halted and was resumed with the injection.
        let recalls = sys.k.counters.exits_of(11);
        let injections = sys.k.counters.injected_virq;
        assert!(injections >= 3, "one injection per shootdown");
        assert!(recalls > 0 || injections >= 3);
        assert!(sys.vmm().guest_marks().contains(&0x3000));
    }
}
