//! Deterministic hostile-guest generator: seeded Byzantine guest
//! programs that attack every guest-input surface the hypervisor
//! validates — the paravirtual disk and net rings, the vAHCI command
//! structures, the page tables walked by the shadow-paging vTLB, and
//! the instruction bytes fed to the emulator.
//!
//! [`plan`] is a pure function of `(surface, seed)`: the same pair
//! always yields byte-identical machine code and the same expected
//! outcome, so a fuzz failure is reproducible from its seed alone.
//! The RNG mirrors the fault injector's conditioning and xorshift
//! step, keeping the platform's "deterministic adversity" idiom in
//! one recognizable shape.
//!
//! Each plan states its contract: either the hypervisor must kill the
//! VM with one specific [`VmKill`] (surface + reason, checked through
//! the structured exit code), or the guest must survive the attack
//! and report a guest-visible error through its own exit code. A
//! hypervisor panic is never acceptable — that is the harness's core
//! assertion.

use nova_hw::guestfault::{GuestFault, GuestSurface, VmKill};
use nova_hw::machine::AHCI_BASE;
use nova_hw::pv;
use nova_x86::asm::Asm;
use nova_x86::insn::{AluOp, Cond};
use nova_x86::reg::Reg;
use nova_x86::MemRef;

use crate::os::{build_os, OsParams, Program};
use crate::rt::{self, layout};

/// Guest RAM size (pages) every hostile plan assumes: 16 MB.
pub const GUEST_PAGES: u64 = 4096;

/// Guest RAM size in bytes.
pub const RAM_BYTES: u32 = (GUEST_PAGES as u32) * 4096;

/// Exit code of a surviving hostile PV-disk guest that saw every
/// malformed descriptor answered with `ST_ERROR`.
pub const EXIT_PV_DISK_OK: u8 = 0x30;
/// Exit code of a surviving hostile vAHCI guest that observed the
/// task-file-error response.
pub const EXIT_VAHCI_OK: u8 = 0x40;
/// Exit code of a surviving hostile vTLB guest whose #PF handler ran.
pub const EXIT_VTLB_OK: u8 = 0x55;

/// Deterministic xorshift RNG, seeded exactly like the fault
/// injector's stream (splitmix-style conditioning, forced odd).
pub struct HostileRng {
    state: u64,
}

impl HostileRng {
    /// Conditions `seed` the same way `nova_hw::fault` does.
    pub fn new(seed: u64) -> HostileRng {
        HostileRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // not an Iterator; mirrors fault::Rng
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The attack surfaces the fuzzer drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Surface {
    /// Paravirtual disk ring registers and descriptors.
    PvDiskRing,
    /// Paravirtual net ring registers and entries.
    PvNetRing,
    /// vAHCI command list / table / PRDT structures.
    Vahci,
    /// Guest page tables walked by the shadow-paging vTLB.
    VtlbWalk,
    /// Instruction bytes reaching the MMIO emulator.
    Emulator,
}

impl Surface {
    /// All fuzzed surfaces.
    pub const ALL: [Surface; 5] = [
        Surface::PvDiskRing,
        Surface::PvNetRing,
        Surface::Vahci,
        Surface::VtlbWalk,
        Surface::Emulator,
    ];

    /// Stable diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            Surface::PvDiskRing => "pv-disk-ring",
            Surface::PvNetRing => "pv-net-ring",
            Surface::Vahci => "vahci",
            Surface::VtlbWalk => "vtlb-walk",
            Surface::Emulator => "emulator",
        }
    }
}

/// The contract a hostile plan imposes on the hypervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// The VM must be killed with exactly this structured record.
    Kill(VmKill),
    /// The VM must survive and exit voluntarily with this code (the
    /// attack is answered with a guest-visible error instead).
    Exit(u8),
}

/// VM features the launching test must configure for a plan.
#[derive(Clone, Copy, Debug, Default)]
pub struct Needs {
    /// Attach the paravirtual disk backend.
    pub pv_disk: bool,
    /// Attach the paravirtual NIC backend (primary-VM only wiring).
    pub pv_nic: bool,
    /// Run under shadow paging (vTLB) instead of nested paging.
    pub shadow_paging: bool,
}

/// One deterministic hostile-guest scenario.
pub struct HostilePlan {
    /// Surface under attack.
    pub surface: Surface,
    /// Seed the plan was derived from.
    pub seed: u64,
    /// Human-readable mutation label (stable per `(surface, seed)`).
    pub mutation: &'static str,
    /// Required outcome.
    pub expect: Expect,
    /// VM configuration the launcher must apply.
    pub needs: Needs,
    /// Lower bound on `guest_faults_rejected` after the run.
    pub min_rejections: u64,
    /// The guest program.
    pub program: Program,
}

/// An infinite spin — used after a write that must be fatal, so a
/// hypervisor that wrongly tolerates the input hits the cycle budget
/// instead of exiting cleanly.
fn spin(a: &mut Asm) {
    let l = a.here_label();
    a.jmp(l);
}

/// A page-aligned guest-physical address strictly outside guest RAM.
fn oob_page(rng: &mut HostileRng) -> u32 {
    RAM_BYTES + ((rng.below(0xf00) as u32) << 12)
}

/// Builds the deterministic plan for `(surface, seed)`. Pure: the
/// same arguments always produce byte-identical programs and the
/// same expectations.
pub fn plan(surface: Surface, seed: u64) -> HostilePlan {
    let mut rng = HostileRng::new(seed ^ ((surface as u64) << 56));
    match surface {
        Surface::PvDiskRing => plan_pv_disk(seed, &mut rng),
        Surface::PvNetRing => plan_pv_net(seed, &mut rng),
        Surface::Vahci => plan_vahci(seed, &mut rng),
        Surface::VtlbWalk => plan_vtlb(seed, &mut rng),
        Surface::Emulator => plan_emulator(seed, &mut rng),
    }
}

/// PV disk ring attacks: a misaligned ring, a ring outside RAM (both
/// structural kills), or a batch of malformed descriptors the backend
/// must answer with `ST_ERROR` while the VM survives.
fn plan_pv_disk(seed: u64, rng: &mut HostileRng) -> HostilePlan {
    let base = pv::PV_BASE as u32;
    match seed % 3 {
        0 => {
            let off = 4 + (rng.below(1022) as u32) * 4;
            let program = build_os(OsParams::minimal(), |a, _| {
                a.mov_mi(
                    MemRef::abs(base + pv::regs::DISK_RING as u32),
                    layout::PV_DISK_RING + off,
                );
                spin(a);
            });
            HostilePlan {
                surface: Surface::PvDiskRing,
                seed,
                mutation: "ring-misaligned",
                expect: Expect::Kill(VmKill::new(
                    GuestSurface::PvDiskRing,
                    GuestFault::Misaligned,
                )),
                needs: Needs::default(),
                min_rejections: 1,
                program,
            }
        }
        1 => {
            let gpa = oob_page(rng);
            let program = build_os(OsParams::minimal(), |a, _| {
                a.mov_mi(MemRef::abs(base + pv::regs::DISK_RING as u32), gpa);
                spin(a);
            });
            HostilePlan {
                surface: Surface::PvDiskRing,
                seed,
                mutation: "ring-out-of-ram",
                expect: Expect::Kill(VmKill::new(GuestSurface::PvDiskRing, GuestFault::BadBase)),
                needs: Needs::default(),
                min_rejections: 1,
                program,
            }
        }
        _ => {
            // Malformed descriptors: each one carries exactly one bad
            // field, and the backend must complete all of them with
            // `ST_ERROR` synchronously at the doorbell — the VM lives.
            let count = 1 + rng.below(6) as u32;
            let mut descs = Vec::new();
            for _ in 0..count {
                let (op, sectors, buf) = match rng.below(3) {
                    0 => (3 + rng.below(250) as u32, 8, layout::DISK_BUF),
                    1 => {
                        let sectors = if rng.below(2) == 0 {
                            0
                        } else {
                            1025 + rng.below(7000) as u32
                        };
                        (pv::disk::OP_READ, sectors, layout::DISK_BUF)
                    }
                    _ => (pv::disk::OP_WRITE, 8, oob_page(rng)),
                };
                descs.push((op, sectors, buf));
            }
            let program = build_os(
                OsParams {
                    pv_disk: true,
                    ..OsParams::minimal()
                },
                |a, _| {
                    let ring = layout::PV_DISK_RING;
                    for (i, &(op, sectors, buf)) in descs.iter().enumerate() {
                        let d =
                            ring + pv::disk::DESC0 as u32 + i as u32 * pv::disk::DESC_SIZE as u32;
                        a.mov_mi(MemRef::abs(d + pv::disk::D_OP as u32), op);
                        a.mov_mi(MemRef::abs(d + pv::disk::D_SECTORS as u32), sectors);
                        a.mov_mi(MemRef::abs(d + pv::disk::D_LBA as u32), 0);
                        a.mov_mi(MemRef::abs(d + pv::disk::D_LBA as u32 + 4), 0);
                        a.mov_mi(MemRef::abs(d + pv::disk::D_BUF as u32), buf);
                        a.mov_mi(MemRef::abs(d + pv::disk::D_BUF as u32 + 4), 0);
                        a.mov_mi(MemRef::abs(d + pv::disk::D_STATUS as u32), 0xdead);
                    }
                    a.mov_mi(MemRef::abs(base + pv::regs::DISK_DOORBELL as u32), count);
                    // All rejections are synchronous: USED and ERRORS
                    // must both already equal the batch size.
                    let fail = a.label();
                    a.mov_rm(Reg::Eax, MemRef::abs(ring + pv::disk::USED as u32));
                    a.cmp_ri(Reg::Eax, count);
                    a.jcc(Cond::Ne, fail);
                    a.mov_rm(Reg::Eax, MemRef::abs(ring + pv::disk::ERRORS as u32));
                    a.cmp_ri(Reg::Eax, count);
                    a.jcc(Cond::Ne, fail);
                    rt::emit_exit(a, EXIT_PV_DISK_OK);
                    a.bind(fail);
                    rt::emit_exit(a, 0x31);
                },
            );
            HostilePlan {
                surface: Surface::PvDiskRing,
                seed,
                mutation: "descriptors-malformed",
                expect: Expect::Exit(EXIT_PV_DISK_OK),
                needs: Needs {
                    pv_disk: true,
                    ..Needs::default()
                },
                min_rejections: count as u64,
                program,
            }
        }
    }
}

/// PV net ring attacks. The net backend treats every malformed input
/// as structural (there is no per-descriptor error lane), so all
/// three mutations must kill the VM on the `PvNetRing` surface.
/// Assembly fragment that plants one mutation into a guest program.
type BodyFn = Box<dyn FnOnce(&mut Asm)>;

fn plan_pv_net(seed: u64, rng: &mut HostileRng) -> HostilePlan {
    let base = pv::PV_BASE as u32;
    let (mutation, reason, body): (_, _, BodyFn) = match seed % 3 {
        0 => {
            let off = 4 + (rng.below(1022) as u32) * 4;
            (
                "ring-misaligned",
                GuestFault::Misaligned,
                Box::new(move |a: &mut Asm| {
                    a.mov_mi(
                        MemRef::abs(base + pv::regs::NET_RING as u32),
                        layout::PV_NET_RING + off,
                    );
                }),
            )
        }
        1 => {
            let gpa = oob_page(rng);
            (
                "ring-out-of-ram",
                GuestFault::BadBase,
                Box::new(move |a: &mut Asm| {
                    a.mov_mi(MemRef::abs(base + pv::regs::NET_RING as u32), gpa);
                }),
            )
        }
        _ => {
            let buf = oob_page(rng);
            let len = 1 + rng.below(2048) as u32;
            (
                "buffer-out-of-ram",
                GuestFault::BufferOutOfRange,
                Box::new(move |a: &mut Asm| {
                    let e = layout::PV_NET_RING + pv::net::ENTRY0 as u32;
                    a.mov_mi(MemRef::abs(e + pv::net::E_BUF as u32), buf);
                    a.mov_mi(MemRef::abs(e + pv::net::E_BUF as u32 + 4), 0);
                    a.mov_mi(MemRef::abs(e + pv::net::E_LEN as u32), len);
                    a.mov_mi(MemRef::abs(e + pv::net::E_STATUS as u32), 0);
                    a.mov_mi(
                        MemRef::abs(base + pv::regs::NET_RING as u32),
                        layout::PV_NET_RING,
                    );
                    a.mov_mi(MemRef::abs(base + pv::regs::NET_DOORBELL as u32), 1);
                }),
            )
        }
    };
    let program = build_os(OsParams::minimal(), |a, _| {
        body(a);
        spin(a);
    });
    HostilePlan {
        surface: Surface::PvNetRing,
        seed,
        mutation,
        expect: Expect::Kill(VmKill::new(GuestSurface::PvNetRing, reason)),
        needs: Needs {
            pv_nic: true,
            ..Needs::default()
        },
        min_rejections: 1,
        program,
    }
}

/// vAHCI attacks: seven single-field corruptions of the command list
/// / command table / PRDT. The device answers each with a task-file
/// error (`P0IS` bit 30) and the VM survives to observe it — AHCI has
/// an in-band error lane, so nothing here is a kill.
fn plan_vahci(seed: u64, rng: &mut HostileRng) -> HostilePlan {
    use nova_hw::ahci::regs;
    let mut clb = layout::DISK_CMD;
    let mut ctba_field = layout::DISK_CTBA;
    let mut fis0 = 0x27u32;
    let mut cmd = 0x25u32;
    let mut sectors = 8u32;
    let mut prdtl = 1u32;
    let mut buf = layout::DISK_BUF;
    let mutation = match seed % 7 {
        0 => {
            clb = oob_page(rng);
            "command-list-out-of-ram"
        }
        1 => {
            ctba_field = oob_page(rng);
            "command-table-out-of-ram"
        }
        2 => {
            fis0 = 0x28 + rng.below(0x50) as u32;
            "fis-type-invalid"
        }
        3 => {
            cmd = [0x20u32, 0x30, 0xc8, 0xec][rng.below(4) as usize];
            "ata-command-unsupported"
        }
        4 => {
            sectors = 0;
            "sector-count-zero"
        }
        5 => {
            prdtl = if rng.below(2) == 0 {
                0
            } else {
                9 + rng.below(56) as u32
            };
            "prdtl-out-of-range"
        }
        _ => {
            buf = oob_page(rng);
            "prd-buffer-out-of-ram"
        }
    };
    let dbc = sectors.max(1) * 512 - 1;
    let program = build_os(OsParams::minimal(), |a, _| {
        let base = AHCI_BASE as u32;
        // Command structures are always built in valid RAM; the
        // mutated *field values* carry the hostility.
        a.mov_mi(MemRef::abs(layout::DISK_CMD), (prdtl << 16) | 5);
        a.mov_mi(MemRef::abs(layout::DISK_CMD + 4), 0);
        a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), ctba_field);
        a.mov_mi(MemRef::abs(layout::DISK_CMD + 12), 0);
        let t = layout::DISK_CTBA;
        a.mov_mi(MemRef::abs(t), fis0 | 0x80 << 8 | cmd << 16);
        a.mov_mi(MemRef::abs(t + 4), 0x40 << 24);
        a.mov_mi(MemRef::abs(t + 8), 0);
        a.mov_mi(MemRef::abs(t + 12), sectors & 0xffff);
        a.mov_mi(MemRef::abs(t + 0x80), buf);
        a.mov_mi(MemRef::abs(t + 0x84), 0);
        a.mov_mi(MemRef::abs(t + 0x88), 0);
        a.mov_mi(MemRef::abs(t + 0x8c), dbc);
        a.mov_mi(MemRef::abs(base + regs::P0CLB), clb);
        a.mov_mi(MemRef::abs(base + regs::P0CLB2), 0);
        a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
        // The rejection is synchronous: the task-file-error bit must
        // already be latched in P0IS.
        let good = a.label();
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
        a.alu_ri(AluOp::And, Reg::Eax, 1 << 30);
        a.jcc(Cond::Ne, good);
        rt::emit_exit(a, 0x41);
        a.bind(good);
        rt::emit_exit(a, EXIT_VAHCI_OK);
    });
    HostilePlan {
        surface: Surface::Vahci,
        seed,
        mutation,
        expect: Expect::Exit(EXIT_VAHCI_OK),
        needs: Needs::default(),
        min_rejections: 1,
        program,
    }
}

/// vTLB attacks under shadow paging: a page-table entry pointing
/// outside RAM must surface as an architectural #PF in the guest
/// (whose handler proves it survived); a CR3 outside RAM on a guest
/// with no IDT wedges the vCPU and must be a structured triple-fault
/// kill. The vTLB deliberately does not count walk rejections — the
/// #PF injection *is* the rejection — so `min_rejections` is zero.
fn plan_vtlb(seed: u64, rng: &mut HostileRng) -> HostilePlan {
    if seed.is_multiple_of(2) {
        let idx = 1 + rng.below(rt::KERNEL_PDES as u64 - 1) as u32;
        let frame = 0x0400_0000 + ((rng.below(0xf00) as u32) << 12);
        let va = (idx << 22) | ((rng.below(1024) as u32) << 12);
        let program = build_os(OsParams::minimal(), |a, _| {
            let after = a.label();
            a.jmp(after);
            let handler = a.here_label();
            rt::emit_exit(a, EXIT_VTLB_OK);
            a.bind(after);
            rt::emit_idt_install(a, 14, handler);
            rt::emit_enable_paging(a);
            // Corrupt one kernel PDE: present + writable but not a
            // large page, so the walk dereferences a PTE frame that
            // lies outside guest RAM.
            a.mov_mi(
                MemRef::abs(layout::BOOT_PD + idx * 4),
                frame | nova_x86::paging::pte::P | nova_x86::paging::pte::W,
            );
            a.mov_ri(Reg::Eax, layout::BOOT_PD);
            a.mov_cr_r(3, Reg::Eax);
            a.mov_rm(Reg::Eax, MemRef::abs(va));
            rt::emit_exit(a, 0x56);
        });
        HostilePlan {
            surface: Surface::VtlbWalk,
            seed,
            mutation: "pde-bad-table-frame",
            expect: Expect::Exit(EXIT_VTLB_OK),
            needs: Needs {
                shadow_paging: true,
                ..Needs::default()
            },
            min_rejections: 0,
            program,
        }
    } else {
        let bad = 0x0400_0000 + ((rng.below(0xf00) as u32) << 12);
        let mut a = Asm::new(layout::CODE);
        a.mov_ri(Reg::Eax, bad);
        a.mov_cr_r(3, Reg::Eax);
        a.mov_r_cr(Reg::Eax, 0);
        a.alu_ri(AluOp::Or, Reg::Eax, nova_x86::reg::cr0::PG);
        a.mov_cr_r(0, Reg::Eax);
        spin(&mut a);
        let program = Program {
            bytes: a.finish(),
            load_gpa: layout::CODE as u64,
            entry: layout::CODE,
            stack: layout::STACK,
        };
        HostilePlan {
            surface: Surface::VtlbWalk,
            seed,
            mutation: "cr3-out-of-ram",
            expect: Expect::Kill(VmKill::new(
                GuestSurface::CpuState,
                GuestFault::UnrecoverableCpuState,
            )),
            needs: Needs {
                shadow_paging: true,
                ..Needs::default()
            },
            min_rejections: 0,
            program,
        }
    }
}

/// Emulator attacks: redirect execution into an MMIO hole, so the
/// instruction fetch yields no decodable bytes. The emulator must
/// refuse and the VMM must kill the VM with the undecodable-
/// instruction record.
fn plan_emulator(seed: u64, rng: &mut HostileRng) -> HostilePlan {
    let (mutation, hole) = if seed.is_multiple_of(2) {
        ("execute-pv-mmio", pv::PV_BASE as u32)
    } else {
        ("execute-ahci-mmio", AHCI_BASE as u32)
    };
    let target = hole + rng.below(0xf00) as u32;
    let program = build_os(OsParams::minimal(), |a, _| {
        a.mov_ri(Reg::Eax, target);
        a.jmp_r(Reg::Eax);
    });
    HostilePlan {
        surface: Surface::Emulator,
        seed,
        mutation,
        expect: Expect::Kill(VmKill::new(
            GuestSurface::Emulator,
            GuestFault::UndecodableInstruction,
        )),
        needs: Needs::default(),
        min_rejections: 0,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_matches_conditioning() {
        let mut a = HostileRng::new(42);
        let mut b = HostileRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
        // Different seeds diverge immediately.
        assert_ne!(HostileRng::new(1).next(), HostileRng::new(2).next());
    }

    #[test]
    fn plans_are_byte_reproducible() {
        for surface in Surface::ALL {
            for seed in 0..8u64 {
                let p1 = plan(surface, seed);
                let p2 = plan(surface, seed);
                assert_eq!(p1.program.bytes, p2.program.bytes, "{surface:?}/{seed}");
                assert_eq!(p1.mutation, p2.mutation);
                assert_eq!(p1.expect, p2.expect);
                assert_eq!(p1.min_rejections, p2.min_rejections);
            }
        }
    }

    #[test]
    fn every_surface_reaches_every_mutation() {
        use std::collections::BTreeSet;
        for surface in Surface::ALL {
            let muts: BTreeSet<&str> = (0..16).map(|s| plan(surface, s).mutation).collect();
            let want = match surface {
                Surface::PvDiskRing | Surface::PvNetRing => 3,
                Surface::Vahci => 7,
                Surface::VtlbWalk | Surface::Emulator => 2,
            };
            assert_eq!(muts.len(), want, "{surface:?}: {muts:?}");
        }
    }

    #[test]
    fn kill_expectations_carry_stable_exit_codes() {
        let p = plan(Surface::PvDiskRing, 0);
        match p.expect {
            Expect::Kill(k) => assert_eq!(k.exit_code(), 0xe0),
            Expect::Exit(_) => panic!("seed 0 must be a kill plan"),
        }
        let p = plan(Surface::Emulator, 0);
        match p.expect {
            Expect::Kill(k) => assert_eq!(k.exit_code(), 0xfe),
            Expect::Exit(_) => panic!("emulator plans are kills"),
        }
    }
}
