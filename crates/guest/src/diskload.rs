//! The sequential direct-I/O disk-read workload (Section 8.2,
//! Figure 6): issues back-to-back reads of a fixed block size and
//! halts between completions, exactly like the paper's benchmark with
//! the buffer cache bypassed.

use nova_x86::insn::Cond;
use nova_x86::reg::Reg;

use crate::os::{build_os, OsParams, Program};
use crate::rt::{self, layout};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskLoadParams {
    /// Number of read requests.
    pub requests: u32,
    /// Block size in bytes (must be a multiple of 512).
    pub block_bytes: u32,
}

impl DiskLoadParams {
    /// A short smoke run.
    pub fn smoke() -> DiskLoadParams {
        DiskLoadParams {
            requests: 4,
            block_bytes: 4096,
        }
    }
}

/// Builds the workload.
pub fn build(p: DiskLoadParams) -> Program {
    assert_eq!(p.block_bytes % 512, 0);
    let sectors = p.block_bytes / 512;
    let params = OsParams {
        paging: false,
        pf_handler: false,
        timer_divisor: None,
        disk: true,
        nic: false,
        pv_disk: false,
        pv_net: false,
    };
    build_os(params, |a, _| {
        rt::emit_mark(a, 0x1000); // benchmark start
        a.mov_ri(Reg::Esi, 0); // request counter / LBA cursor

        let req = a.here_label();
        // Sequential: LBA advances by the block size.
        a.mov_rr(Reg::Eax, Reg::Esi);
        a.mov_ri(Reg::Ebx, sectors);
        a.mul_r(Reg::Ebx); // EAX = request * sectors
        a.mov_ri(Reg::Ebx, sectors);
        a.mov_ri(Reg::Ecx, layout::DISK_BUF);
        rt::emit_disk_read_sync(a);

        // Per-request kernel work (the block layer, request queue and
        // completion path a real OS runs — the bulk of the paper's
        // native CPU utilization).
        a.mov_ri(Reg::Ecx, 2500);
        let spin = a.here_label();
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, spin);
        // Touch the data once (checksum pass: per-byte cost).
        a.mov_ri(Reg::Edi, layout::DISK_BUF);
        a.mov_ri(Reg::Ecx, p.block_bytes / 4);
        let sum = a.here_label();
        a.alu_rm(
            nova_x86::insn::AluOp::Add,
            Reg::Eax,
            nova_x86::insn::MemRef::base_disp(Reg::Edi, 0),
        );
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, sum);

        a.inc_r(Reg::Esi);
        a.cmp_ri(Reg::Esi, p.requests);
        a.jcc(Cond::B, req);

        rt::emit_mark(a, 0x1001); // benchmark end
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::RunOutcome;
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    fn image(p: DiskLoadParams) -> GuestImage {
        let prog = build(p);
        GuestImage {
            bytes: prog.bytes,
            load_gpa: prog.load_gpa,
            entry: prog.entry,
            stack: prog.stack,
        }
    }

    #[test]
    fn virtualized_disk_reads_complete_with_correct_data() {
        let p = DiskLoadParams {
            requests: 3,
            block_bytes: 8192,
        };
        let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
            image(p),
            4096,
        )));
        let out = sys.run(Some(8_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));

        // The device DMAed straight into guest memory: check the last
        // block against the disk's pattern. Guest GPA DISK_BUF lives at
        // host frame 0x1000 + DISK_BUF/4096.
        let host = 0x1000 * 4096 + layout::DISK_BUF as u64;
        let got = sys.k.machine.mem.read_bytes(host, 16);
        let lba_last = 2 * (8192 / 512);
        let expect = sys.k.machine.ahci().sector(lba_last);
        assert_eq!(got, expect[..16].to_vec());

        // Structure of Figure 6's virtualized path: ~6 MMIO exits per
        // request (doorbell + interrupt handling) plus interrupt
        // virtualization exits.
        let mmio = sys.k.counters.exits_of(7);
        assert!(
            (15..=30).contains(&mmio),
            "3 requests x ~6 MMIO exits, got {mmio}"
        );
        assert!(sys.k.counters.exits_of(3) >= 3, "HLT exit per request");
        assert!(sys.k.counters.injected_virq >= 3, "vIRQ per completion");
        // Both marks arrived.
        assert_eq!(sys.k.machine.marks().len(), 2);
    }

    #[test]
    fn more_requests_more_exits_same_per_request_cost() {
        let run = |n: u32| {
            let p = DiskLoadParams {
                requests: n,
                block_bytes: 4096,
            };
            let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
                image(p),
                4096,
            )));
            sys.run(Some(30_000_000_000));
            sys.k.counters.exits_of(7)
        };
        let three = run(3);
        let six = run(6);
        let per_req_3 = three as f64 / 3.0;
        let per_req_6 = six as f64 / 6.0;
        assert!(
            (per_req_3 - per_req_6).abs() <= 1.5,
            "MMIO exits per request stable: {per_req_3} vs {per_req_6}"
        );
    }
}
