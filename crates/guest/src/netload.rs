//! The UDP-receive workload (Section 8.3, Figure 7): the guest drives
//! the (directly assigned) NIC with its own ring-buffer driver, copies
//! every received payload once (the data-transfer cost the paper
//! identifies), and halts between coalesced interrupts.

use nova_x86::insn::{AluOp, Cond, MemRef};
use nova_x86::reg::Reg;

use crate::os::{build_os, OsParams, Program, VEC_NIC};
use crate::rt::{self, layout, vars};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetLoadParams {
    /// Stop after receiving this many packets.
    pub target_packets: u32,
    /// Ring entries (must divide the NIC's view; 64 standard).
    pub ring_entries: u32,
}

impl NetLoadParams {
    /// A short smoke run.
    pub fn smoke() -> NetLoadParams {
        NetLoadParams {
            target_packets: 10,
            ring_entries: 64,
        }
    }

    /// The benchmark configuration: a full 256-descriptor ring.
    pub fn bench(target_packets: u32) -> NetLoadParams {
        NetLoadParams {
            target_packets,
            ring_entries: 256,
        }
    }
}

/// Application copy destination for received payloads.
const APP_BUF: u32 = 0x16_0000;

/// Builds the workload.
pub fn build(p: NetLoadParams) -> Program {
    use nova_hw::nic::regs;
    let base = nova_hw::machine::NIC_BASE as u32;

    let params = OsParams {
        paging: false,
        pf_handler: false,
        timer_divisor: None,
        disk: false,
        nic: true,
        pv_disk: false,
        pv_net: false,
    };
    build_os(params, |a, _| {
        // --- NIC interrupt handler ---
        let after = a.label();
        a.jmp(after);
        let handler = a.here_label();
        a.push_r(Reg::Eax);
        a.push_r(Reg::Ebx);
        a.push_r(Reg::Ecx);
        a.push_r(Reg::Edx);
        a.push_r(Reg::Esi);
        a.push_r(Reg::Edi);

        // Read ICR (read-to-clear).
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::ICR));

        // Drain descriptors with the DD bit set.
        let drain = a.here_label();
        // EBX = ring slot address = NIC_RING + head*16.
        a.mov_rm(Reg::Ebx, rt::var(vars::RX_HEAD));
        a.shl_ri(Reg::Ebx, 4);
        a.add_ri(Reg::Ebx, layout::NIC_RING);
        // Status byte at +12.
        a.movzx_rm8(Reg::Eax, MemRef::base_disp(Reg::Ebx, 12));
        a.test_rr(Reg::Eax, Reg::Eax);
        let done = a.label();
        a.jcc(Cond::E, done);

        // Length at +8 (16 bits; read dword, mask).
        a.mov_rm(Reg::Ecx, MemRef::base_disp(Reg::Ebx, 8));
        a.alu_ri(AluOp::And, Reg::Ecx, 0xffff);
        a.alu_mr(AluOp::Add, rt::var(vars::RX_BYTES), Reg::Ecx);

        // Copy the payload to the application buffer (dword count).
        a.mov_rm(Reg::Esi, rt::var(vars::RX_HEAD));
        a.shl_ri(Reg::Esi, 14); // * 16 KiB
        a.add_ri(Reg::Esi, layout::NIC_BUF);
        a.mov_ri(Reg::Edi, APP_BUF);
        a.add_ri(Reg::Ecx, 3);
        a.shr_ri(Reg::Ecx, 2);
        a.rep_movsd();

        // Clear the status and recycle the descriptor as the new tail.
        a.mov_m8i(MemRef::base_disp(Reg::Ebx, 12), 0);
        a.mov_rm(Reg::Eax, rt::var(vars::RX_HEAD));
        a.mov_mr(MemRef::abs(base + regs::RDT), Reg::Eax);

        // Advance head modulo ring size; count the packet.
        a.mov_rm(Reg::Eax, rt::var(vars::RX_HEAD));
        a.inc_r(Reg::Eax);
        a.alu_ri(AluOp::And, Reg::Eax, p.ring_entries - 1);
        a.mov_mr(rt::var(vars::RX_HEAD), Reg::Eax);
        a.inc_m(rt::var(vars::PKT_COUNT));
        a.jmp(drain);

        a.bind(done);
        rt::emit_eoi_both(a);
        a.pop_r(Reg::Edi);
        a.pop_r(Reg::Esi);
        a.pop_r(Reg::Edx);
        a.pop_r(Reg::Ecx);
        a.pop_r(Reg::Ebx);
        a.pop_r(Reg::Eax);
        a.iret();

        a.bind(after);
        rt::emit_idt_install(a, VEC_NIC, handler);

        // --- Ring initialization ---
        a.mov_ri(Reg::Edi, layout::NIC_RING);
        a.mov_ri(Reg::Eax, layout::NIC_BUF);
        a.mov_ri(Reg::Ecx, p.ring_entries);
        let fill = a.here_label();
        a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Eax); // buffer low
        a.mov_mi(MemRef::base_disp(Reg::Edi, 4), 0); // buffer high
        a.mov_mi(MemRef::base_disp(Reg::Edi, 12), 0); // status
        a.add_ri(Reg::Eax, 0x4000);
        a.add_ri(Reg::Edi, 16);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, fill);

        // --- Controller programming (direct MMIO: no exits) ---
        a.mov_mi(MemRef::abs(base + regs::RDBAL), layout::NIC_RING);
        a.mov_mi(MemRef::abs(base + regs::RDBAH), 0);
        a.mov_mi(MemRef::abs(base + regs::RDLEN), p.ring_entries * 16);
        a.mov_mi(MemRef::abs(base + regs::RDH), 0);
        a.mov_mi(MemRef::abs(base + regs::RDT), p.ring_entries - 1);
        a.mov_mi(MemRef::abs(base + regs::IMS), nova_hw::nic::ICR_RXT0);

        rt::emit_mark(a, 0x2000); // ready: the harness starts traffic

        // --- Main loop: halt until the target is reached ---
        let wait = a.here_label();
        a.sti();
        a.hlt();
        a.mov_rm(Reg::Eax, rt::var(vars::PKT_COUNT));
        a.cmp_ri(Reg::Eax, p.target_packets);
        a.jcc(Cond::B, wait);

        rt::emit_mark(a, 0x2001);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::RunOutcome;
    use nova_hw::nic::{Nic, Stream};
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    fn image(p: NetLoadParams) -> GuestImage {
        let prog = build(p);
        GuestImage {
            bytes: prog.bytes,
            load_gpa: prog.load_gpa,
            entry: prog.entry,
            stack: prog.stack,
        }
    }

    #[test]
    fn direct_assigned_nic_stream_reaches_guest() {
        let p = NetLoadParams {
            target_packets: 12,
            ring_entries: 64,
        };
        let mut cfg = VmmConfig::full_virt(image(p), 4096);
        cfg.name = "net-vm".into();
        let mut opts = LaunchOptions::standard(cfg);
        opts.with_disk = false;
        opts.direct_nic = true;
        let mut sys = System::build(opts);

        // Start the traffic generator: 12+ packets of 1472 bytes.
        let dev = sys.k.machine.dev.nic;
        sys.k
            .machine
            .bus
            .typed_mut::<Nic>(dev)
            .unwrap()
            .set_stream(Stream {
                packet_bytes: 1472,
                interarrival: 200_000,
                remaining: 16,
            });
        sys.k.machine.bus.events.schedule(
            sys.k.machine.clock + 200_000,
            nova_hw::event::Event {
                device: dev,
                token: 1,
            },
        );

        let out = sys.run(Some(20_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));

        // The NIC DMAed into *guest* frames through the IOMMU.
        assert!(sys.k.machine.bus.iommu.faults.is_empty());
        // Guest counted its packets: PKT_COUNT at guest VARS.
        let host_vars = 0x1000 * 4096 + layout::VARS as u64;
        let pkts = sys
            .k
            .machine
            .mem
            .read_u32(host_vars + vars::PKT_COUNT as u64);
        assert!(pkts >= 12, "guest saw {pkts} packets");
        let bytes = sys
            .k
            .machine
            .mem
            .read_u32(host_vars + vars::RX_BYTES as u64);
        assert_eq!(bytes, pkts * 1472);

        // Figure 7 structure: device registers never exit; each
        // coalesced interrupt reaches the guest as an injection (via an
        // ExtInt exit when the guest was running, or a host-mode wakeup
        // when it was halted).
        assert_eq!(
            sys.k.counters.exits_of(7),
            0,
            "no MMIO exits with direct assignment"
        );
        assert!(sys.k.counters.injected_virq > 0);
        assert!(sys.k.counters.exits_of(6) > 0, "PIC EOIs exit");
    }
}
