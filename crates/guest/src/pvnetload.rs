//! The paravirtual UDP-receive workload (the "virtual NIC" column of
//! Figure 7): the same packet sink as [`crate::netload`], but the
//! guest never touches NIC registers. It posts receive buffers into
//! the shared PV ring ([`nova_hw::pv::net`]), rings the doorbell once
//! per ring refill, and consumes filled entries straight from shared
//! memory. The VMM backend drives the physical e1000e and DMAs packet
//! payloads directly into the guest's buffers (zero copy), so the
//! per-packet guest cost is one memory copy — exits happen only per
//! coalesced interrupt and per refill batch.

use nova_x86::insn::{AluOp, Cond, MemRef};
use nova_x86::reg::Reg;

use crate::os::{build_os, OsParams, Program, VEC_NIC};
use crate::rt::{self, layout, vars};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct PvNetLoadParams {
    /// Stop after receiving this many packets.
    pub target_packets: u32,
    /// Receive buffers kept posted (16 KB each; at most the PV ring
    /// capacity).
    pub buffers: u32,
}

impl PvNetLoadParams {
    /// A short smoke run.
    pub fn smoke() -> PvNetLoadParams {
        PvNetLoadParams {
            target_packets: 10,
            buffers: 64,
        }
    }
}

/// Application copy destination for received payloads.
const APP_BUF: u32 = 0x16_0000;

/// Builds the workload.
pub fn build(p: PvNetLoadParams) -> Program {
    use nova_hw::pv::{net, regs, PV_BASE};
    let base = PV_BASE as u32;
    let ring = layout::PV_NET_RING;
    assert!(p.buffers >= 1 && p.buffers <= net::CAPACITY);

    let params = OsParams {
        pv_net: true,
        ..OsParams::minimal()
    };
    build_os(params, |a, _| {
        // --- PV receive interrupt handler ---
        let after = a.label();
        a.jmp(after);
        let handler = a.here_label();
        a.push_r(Reg::Eax);
        a.push_r(Reg::Ebx);
        a.push_r(Reg::Ecx);
        a.push_r(Reg::Edx);
        a.push_r(Reg::Esi);
        a.push_r(Reg::Edi);

        // Acknowledge the coalesced interrupt (write-1-to-clear): the
        // one register access of the whole handler.
        a.mov_mi(MemRef::abs(base + regs::NET_ISR as u32), 1);
        a.mov_mi(rt::var(vars::SCRATCH), 0); // buffers to repost

        // Drain filled entries straight from the shared ring page.
        let drain = a.here_label();
        // EBX = entry address = ring + ENTRY0 + head * ENTRY_SIZE.
        a.mov_rm(Reg::Ebx, rt::var(vars::RX_HEAD));
        a.shl_ri(Reg::Ebx, 4);
        a.add_ri(Reg::Ebx, ring + net::ENTRY0 as u32);
        a.mov_rm(Reg::Eax, MemRef::base_disp(Reg::Ebx, net::E_STATUS as i32));
        a.test_rr(Reg::Eax, Reg::Eax);
        let done = a.label();
        a.jcc(Cond::E, done);

        // Packet length, byte accounting.
        a.mov_rm(Reg::Ecx, MemRef::base_disp(Reg::Ebx, net::E_LEN as i32));
        a.alu_mr(AluOp::Add, rt::var(vars::RX_BYTES), Reg::Ecx);

        // Copy the payload to the application buffer (dword count) —
        // the one per-packet data-transfer cost.
        a.mov_rm(Reg::Esi, MemRef::base_disp(Reg::Ebx, net::E_BUF as i32));
        a.mov_ri(Reg::Edi, APP_BUF);
        a.add_ri(Reg::Ecx, 3);
        a.shr_ri(Reg::Ecx, 2);
        a.rep_movsd();

        // Consume the entry and advance the head (wrap at capacity).
        a.mov_mi(MemRef::base_disp(Reg::Ebx, net::E_STATUS as i32), 0);
        a.inc_m(rt::var(vars::PKT_COUNT));
        a.mov_rm(Reg::Eax, rt::var(vars::RX_HEAD));
        a.inc_r(Reg::Eax);
        a.cmp_ri(Reg::Eax, net::CAPACITY);
        let no_wrap_h = a.label();
        a.jcc(Cond::B, no_wrap_h);
        a.xor_rr(Reg::Eax, Reg::Eax);
        a.bind(no_wrap_h);
        a.mov_mr(rt::var(vars::RX_HEAD), Reg::Eax);

        // Repost the freed buffer at the producer slot. Buffers cycle
        // with the posting order, so the slot being reposted always
        // reuses the buffer just consumed.
        a.mov_rm(Reg::Ebx, rt::var(vars::PV_SLOT));
        a.shl_ri(Reg::Ebx, 4);
        a.add_ri(Reg::Ebx, ring + net::ENTRY0 as u32);
        a.mov_rm(Reg::Edx, rt::var(vars::PV_AUX));
        a.shl_ri(Reg::Edx, 14); // * 16 KiB
        a.add_ri(Reg::Edx, layout::NIC_BUF);
        a.mov_mr(MemRef::base_disp(Reg::Ebx, net::E_BUF as i32), Reg::Edx);
        a.mov_mi(MemRef::base_disp(Reg::Ebx, net::E_BUF as i32 + 4), 0);
        a.mov_mi(MemRef::base_disp(Reg::Ebx, net::E_LEN as i32), 0x4000);
        a.mov_mi(MemRef::base_disp(Reg::Ebx, net::E_STATUS as i32), 0);
        // Advance slot (wrap at ring capacity) and buffer index
        // (wrap at the buffer count).
        a.mov_rm(Reg::Eax, rt::var(vars::PV_SLOT));
        a.inc_r(Reg::Eax);
        a.cmp_ri(Reg::Eax, net::CAPACITY);
        let no_wrap_s = a.label();
        a.jcc(Cond::B, no_wrap_s);
        a.xor_rr(Reg::Eax, Reg::Eax);
        a.bind(no_wrap_s);
        a.mov_mr(rt::var(vars::PV_SLOT), Reg::Eax);
        a.mov_rm(Reg::Eax, rt::var(vars::PV_AUX));
        a.inc_r(Reg::Eax);
        a.cmp_ri(Reg::Eax, p.buffers);
        let no_wrap_b = a.label();
        a.jcc(Cond::B, no_wrap_b);
        a.xor_rr(Reg::Eax, Reg::Eax);
        a.bind(no_wrap_b);
        a.mov_mr(rt::var(vars::PV_AUX), Reg::Eax);
        a.inc_m(rt::var(vars::SCRATCH));
        a.jmp(drain);

        a.bind(done);
        // One doorbell for the whole refill, only if anything drained.
        a.mov_rm(Reg::Eax, rt::var(vars::SCRATCH));
        a.test_rr(Reg::Eax, Reg::Eax);
        let no_refill = a.label();
        a.jcc(Cond::E, no_refill);
        a.mov_mr(MemRef::abs(base + regs::NET_DOORBELL as u32), Reg::Eax);
        a.bind(no_refill);
        rt::emit_eoi_both(a);
        a.pop_r(Reg::Edi);
        a.pop_r(Reg::Esi);
        a.pop_r(Reg::Edx);
        a.pop_r(Reg::Ecx);
        a.pop_r(Reg::Ebx);
        a.pop_r(Reg::Eax);
        a.iret();

        a.bind(after);
        rt::emit_idt_install(a, VEC_NIC, handler);

        // --- Initial ring fill: post every buffer ---
        a.mov_ri(Reg::Edi, ring + net::ENTRY0 as u32);
        a.mov_ri(Reg::Eax, layout::NIC_BUF);
        a.mov_ri(Reg::Ecx, p.buffers);
        let fill = a.here_label();
        a.mov_mr(MemRef::base_disp(Reg::Edi, net::E_BUF as i32), Reg::Eax);
        a.mov_mi(MemRef::base_disp(Reg::Edi, net::E_BUF as i32 + 4), 0);
        a.mov_mi(MemRef::base_disp(Reg::Edi, net::E_LEN as i32), 0x4000);
        a.mov_mi(MemRef::base_disp(Reg::Edi, net::E_STATUS as i32), 0);
        a.add_ri(Reg::Eax, 0x4000);
        a.add_ri(Reg::Edi, net::ENTRY_SIZE as u32);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, fill);
        a.mov_mi(rt::var(vars::PV_SLOT), p.buffers);
        a.mov_mi(rt::var(vars::PV_AUX), 0);

        // --- Backend bring-up: ring address, then the initial refill
        // doorbell (two MMIO exits, ever) ---
        a.mov_mi(MemRef::abs(base + regs::NET_RING as u32), ring);
        a.mov_mi(MemRef::abs(base + regs::NET_DOORBELL as u32), p.buffers);

        rt::emit_mark(a, 0x2000); // ready: the harness starts traffic

        // --- Main loop: halt until the target is reached ---
        let wait = a.here_label();
        a.sti();
        a.hlt();
        a.mov_rm(Reg::Eax, rt::var(vars::PKT_COUNT));
        a.cmp_ri(Reg::Eax, p.target_packets);
        a.jcc(Cond::B, wait);

        rt::emit_mark(a, 0x2001);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::RunOutcome;
    use nova_hw::nic::{Nic, Stream};
    use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

    fn image(p: PvNetLoadParams) -> GuestImage {
        let prog = build(p);
        GuestImage {
            bytes: prog.bytes,
            load_gpa: prog.load_gpa,
            entry: prog.entry,
            stack: prog.stack,
        }
    }

    #[test]
    fn pv_nic_stream_reaches_guest_without_register_exits() {
        let p = PvNetLoadParams {
            target_packets: 12,
            buffers: 64,
        };
        let mut cfg = VmmConfig::full_virt(image(p), 4096);
        cfg.name = "pvnet-vm".into();
        cfg.pv_nic = true;
        let mut opts = LaunchOptions::standard(cfg);
        opts.with_disk = false;
        let mut sys = System::build(opts);

        let dev = sys.k.machine.dev.nic;
        sys.k
            .machine
            .bus
            .typed_mut::<Nic>(dev)
            .unwrap()
            .set_stream(Stream {
                packet_bytes: 1472,
                interarrival: 200_000,
                remaining: 16,
            });
        sys.k.machine.bus.events.schedule(
            sys.k.machine.clock + 200_000,
            nova_hw::event::Event {
                device: dev,
                token: 1,
            },
        );

        let out = sys.run(Some(20_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));

        // Zero copy: the NIC DMAed into guest frames through the
        // VMM's IOMMU mapping.
        assert!(sys.k.machine.bus.iommu.faults.is_empty());
        let host_vars = 0x1000 * 4096 + layout::VARS as u64;
        let pkts = sys
            .k
            .machine
            .mem
            .read_u32(host_vars + vars::PKT_COUNT as u64);
        assert!(pkts >= 12, "guest saw {pkts} packets");
        let bytes = sys
            .k
            .machine
            .mem
            .read_u32(host_vars + vars::RX_BYTES as u64);
        assert_eq!(bytes, pkts * 1472);

        // Exit structure: a handful of MMIO exits total (bring-up,
        // ISR acks, refill doorbells) — not per packet.
        let (pv_packets, pv_doorbells, pv_irqs) = {
            let n = sys.vmm().dev().pvnet.as_ref().unwrap();
            (n.packets, n.doorbells, n.irqs)
        };
        assert!(pv_packets >= 12);
        assert!(pv_doorbells >= 1);
        let mmio = sys.k.counters.exits_of(7);
        assert!(mmio <= 2 + 2 * pv_irqs, "{mmio} MMIO exits");
        assert!(sys.k.counters.injected_virq > 0);
    }
}
