//! 16550-style UART at the COM1 ports. Output is captured into a
//! buffer so guests can log; the transmitter is always ready.

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};

/// COM1 base port.
pub const COM1: u16 = 0x3f8;

/// The UART model.
#[derive(Default)]
pub struct Serial {
    /// Captured transmitted bytes.
    pub output: Vec<u8>,
}

impl Serial {
    /// Creates the UART.
    pub fn new() -> Serial {
        Serial::default()
    }

    /// Captured output as a lossy string.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

impl Device for Serial {
    fn name(&self) -> &'static str {
        "16550"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn io_read(&mut self, _ctx: &mut DevCtx, port: u16, _size: OpSize) -> u32 {
        match port - COM1 {
            5 => 0x60, // LSR: transmitter empty + holding register empty
            _ => 0,
        }
    }

    fn io_write(&mut self, _ctx: &mut DevCtx, port: u16, _size: OpSize, val: u32) {
        if port == COM1 {
            self.output.push(val as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;

    #[test]
    fn captures_output() {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(Serial::new()));
        bus.map_ports(COM1, COM1 + 7, dev);
        let mut mem = PhysMem::new(16);
        for b in b"hi" {
            bus.io_write(&mut mem, 0, COM1, OpSize::Byte, *b as u32);
        }
        // LSR reports ready.
        assert_eq!(
            bus.io_read(&mut mem, 0, COM1 + 5, OpSize::Byte) & 0x20,
            0x20
        );
    }
}
