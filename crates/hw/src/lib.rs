//! Simulated x86 hardware platform for the NOVA reproduction.
//!
//! This crate substitutes for the physical evaluation machines of the
//! paper (Section 8, Table 1): a cycle-accounting CPU core interpreting
//! real x86 machine code, VT-x-like virtualization extensions (VMCS,
//! intercept controls, VM exits, VPID-tagged TLB), an MMU performing
//! two-level guest page walks and nested EPT/NPT walks, an IOMMU that
//! enforces DMA remapping on every device transaction, interrupt
//! controllers, timers, and device models (AHCI disk controller, NIC
//! with interrupt coalescing, serial port, VGA text buffer, PCI
//! configuration space).
//!
//! All timing flows from [`cost::CostModel`], whose per-generation
//! constants are anchored to the paper's measured transition costs
//! (Figures 8 and 9, Section 8.5).

#![forbid(unsafe_code)]

pub mod ahci;
pub mod cost;
pub mod cpu;
pub mod device;
pub mod event;
pub mod fault;
pub mod guestfault;
pub mod iommu;
pub mod kbd;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod nic;
pub mod pci;
pub mod pic;
pub mod pit;
pub mod pv;
pub mod serial;
pub mod tlb;
pub mod vga;
pub mod vmx;

/// CPU clock cycles — the unit of all simulated time.
pub type Cycles = u64;

/// Host-physical address.
pub type PAddr = u64;

pub use cost::CostModel;
pub use guestfault::{GuestFault, GuestSurface, VmKill};
pub use machine::Machine;
