//! Per-CPU-generation cycle cost model.
//!
//! The paper's microbenchmarks (Figures 8 and 9, Table 1) measure the
//! hardware-induced costs that dominate NOVA's virtualization overhead:
//! user/kernel transitions, the hypervisor IPC path, TLB effects of
//! address-space switches, guest/host mode transitions, VMREAD latency,
//! and vTLB fill work. This module encodes those measurements as a
//! [`CostModel`] per processor, so the benchmark harnesses can
//! regenerate the figures and the full-system simulations (Figure 5,
//! Table 2) can charge realistic cycle counts.
//!
//! Exact per-bar cycle values are reconstructed from the paper's figure
//! labels and the Section 8.5 anchors (1016-cycle guest/host transition
//! and ~300-cycle one-way IPC on the Core i7); EXPERIMENTS.md records
//! each paper-vs-model value.

use nova_x86::cpuid::{self, CpuIdent};

use crate::Cycles;

/// Cycle costs of one CPU model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The processor this model describes.
    pub ident: CpuIdent,

    // ---- User/kernel boundary (Figure 8) ----
    /// Entering and leaving the hypervisor (`sysenter`, `sti`,
    /// `sysexit`) — the lowermost box of Figure 8.
    pub syscall_entry_exit: Cycles,
    /// The hypervisor IPC path: capability lookup, portal traversal,
    /// context switch (both directions of one call/reply rendezvous
    /// share this cost once each).
    pub ipc_path: Cycles,
    /// Extra cost of an address-space-crossing IPC: TLB flush plus the
    /// immediate refill misses ("TLB effects" in Figure 8).
    pub ipc_tlb_effects: Cycles,
    /// Incremental cost per message word transferred (2–3 cycles per
    /// word per Section 8.4).
    pub ipc_per_word: Cycles,

    // ---- Guest/host boundary (Figure 9) ----
    /// VM exit plus VM resume round trip (the lowermost box of
    /// Figure 9; 1016 cycles on the Core i7 with VPID per Section 8.5).
    pub vm_transition: Cycles,
    /// Extra transition cost when the CPU lacks (or disables) tagged
    /// TLB entries: the hardware must flush on every VM transition.
    pub vm_transition_untagged_extra: Cycles,
    /// One VMREAD of a guest-state field group (the vTLB-miss path
    /// performs six).
    pub vmread: Cycles,
    /// Software cost of parsing the guest and host page tables and
    /// updating the shadow page table during a vTLB fill.
    pub vtlb_fill_sw: Cycles,
    /// Whether the part supports tagged TLB entries (VPID on Intel
    /// Bloomfield, ASID on AMD).
    pub has_tagged_tlb: bool,

    // ---- Memory hierarchy ----
    /// Cycles per data memory access (cache-hit average).
    pub mem_access: Cycles,
    /// Cycles per page-table level referenced during a hardware walk.
    pub walk_level: Cycles,
    /// Refill cost per TLB entry re-populated after a full flush
    /// (amortized; used for untagged VM transitions and cross-AS IPC).
    pub tlb_refill_per_entry: Cycles,

    // ---- User-level VMM work (Section 8.5 breakdown) ----
    /// Fetching and decoding a faulting instruction in the VMM's
    /// instruction emulator.
    pub emul_decode: Cycles,
    /// Updating a virtual-device state machine for one register access.
    pub emul_device: Cycles,
    /// Simple register-only emulation (CPUID-class exits).
    pub emul_simple: Cycles,
}

impl CostModel {
    /// Cost of one same-address-space IPC (call or reply), excluding
    /// per-word payload cost — the sum of the first two Figure 8 boxes.
    pub fn ipc_same_as(&self) -> Cycles {
        self.syscall_entry_exit + self.ipc_path
    }

    /// Cost of one cross-address-space IPC — all three Figure 8 boxes.
    pub fn ipc_cross_as(&self) -> Cycles {
        self.ipc_same_as() + self.ipc_tlb_effects
    }

    /// Round-trip guest/host transition cost with the configured TLB
    /// tagging honoured.
    pub fn vm_transition_cost(&self, tagged_enabled: bool) -> Cycles {
        if self.has_tagged_tlb && tagged_enabled {
            self.vm_transition
        } else {
            self.vm_transition + self.vm_transition_untagged_extra
        }
    }

    /// Total hardware+software cost of one vTLB miss handled in the
    /// hypervisor: transition, six VMREADs, fill (Figure 9).
    pub fn vtlb_miss_cost(&self, tagged_enabled: bool) -> Cycles {
        self.vm_transition_cost(tagged_enabled) + 6 * self.vmread + self.vtlb_fill_sw
    }
}

/// AMD Opteron 2212, Santa Rosa (K8).
pub const K8: CostModel = CostModel {
    ident: cpuid::OPTERON_2212,
    syscall_entry_exit: 151,
    ipc_path: 137,
    ipc_tlb_effects: 40,
    ipc_per_word: 3,
    vm_transition: 1780,
    vm_transition_untagged_extra: 120,
    vmread: 20, // VMCB accesses are plain loads on AMD
    vtlb_fill_sw: 370,
    has_tagged_tlb: false,
    mem_access: 2,
    walk_level: 20,
    tlb_refill_per_entry: 18,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// AMD Phenom 9550, Agena (K10). Supports tagged TLB entries (ASIDs)
/// and nested paging.
pub const K10: CostModel = CostModel {
    ident: cpuid::PHENOM_9550,
    syscall_entry_exit: 158,
    ipc_path: 126,
    ipc_tlb_effects: 50,
    ipc_per_word: 3,
    vm_transition: 1270,
    vm_transition_untagged_extra: 110,
    vmread: 20,
    vtlb_fill_sw: 360,
    has_tagged_tlb: true,
    mem_access: 2,
    walk_level: 18,
    tlb_refill_per_entry: 18,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// Intel Core Duo T2500, Yonah (YNH) — first-generation VT-x with very
/// expensive transitions.
pub const YNH: CostModel = CostModel {
    ident: cpuid::CORE_DUO_T2500,
    syscall_entry_exit: 193,
    ipc_path: 139,
    ipc_tlb_effects: 52,
    ipc_per_word: 3,
    vm_transition: 2087,
    vm_transition_untagged_extra: 140,
    vmread: 50,
    vtlb_fill_sw: 319,
    has_tagged_tlb: false,
    mem_access: 2,
    walk_level: 22,
    tlb_refill_per_entry: 20,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// Intel Core2 Duo E6600, Conroe (CNR).
pub const CNR: CostModel = CostModel {
    ident: cpuid::CORE2_E6600,
    syscall_entry_exit: 208,
    ipc_path: 150,
    ipc_tlb_effects: 72,
    ipc_per_word: 3,
    vm_transition: 2122,
    vm_transition_untagged_extra: 130,
    vmread: 51,
    vtlb_fill_sw: 308,
    has_tagged_tlb: false,
    mem_access: 2,
    walk_level: 20,
    tlb_refill_per_entry: 19,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// Intel Core2 Duo E8400, Wolfdale (WFD).
pub const WFD: CostModel = CostModel {
    ident: cpuid::CORE2_E8400,
    syscall_entry_exit: 199,
    ipc_path: 115,
    ipc_tlb_effects: 79,
    ipc_per_word: 2,
    vm_transition: 1324,
    vm_transition_untagged_extra: 120,
    vmread: 52,
    vtlb_fill_sw: 446,
    has_tagged_tlb: false,
    mem_access: 2,
    walk_level: 18,
    tlb_refill_per_entry: 17,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// Intel Core i7 920, Bloomfield (BLM) — the paper's primary machine.
/// VPID-tagged TLB, EPT. Section 8.5 anchors: 1016-cycle transition,
/// ~300-cycle one-way IPC, ~3900-cycle average exit.
pub const BLM: CostModel = CostModel {
    ident: cpuid::CORE_I7_920,
    syscall_entry_exit: 90,
    ipc_path: 119,
    ipc_tlb_effects: 79,
    ipc_per_word: 2,
    vm_transition: 1016,
    vm_transition_untagged_extra: 75,
    vmread: 43,
    vtlb_fill_sw: 48,
    has_tagged_tlb: true,
    mem_access: 2,
    walk_level: 16,
    tlb_refill_per_entry: 16,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// AMD Phenom X3 8450 — the AMD machine of the Figure 5 comparison.
/// NPT with ASIDs and a two-level host format with 4 MB pages.
pub const PHENOM_X3: CostModel = CostModel {
    ident: cpuid::PHENOM_X3_8450,
    syscall_entry_exit: 158,
    ipc_path: 126,
    ipc_tlb_effects: 50,
    ipc_per_word: 3,
    vm_transition: 1250,
    vm_transition_untagged_extra: 110,
    vmread: 20,
    vtlb_fill_sw: 360,
    has_tagged_tlb: true,
    mem_access: 2,
    walk_level: 18,
    tlb_refill_per_entry: 18,
    emul_decode: 1200,
    emul_device: 2000,
    emul_simple: 600,
};

/// The six processors of Table 1 with their cost models, in order.
pub const TABLE_1_MODELS: [CostModel; 6] = [K8, K10, YNH, CNR, WFD, BLM];

/// The Intel parts used in the Figure 9 vTLB microbenchmark, in order.
pub const FIG9_MODELS: [CostModel; 4] = [YNH, CNR, WFD, BLM];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blm_anchors_match_section_8_5() {
        // "1016 cycles (26%) are caused by the transition between guest
        // mode and host mode."
        assert_eq!(BLM.vm_transition_cost(true), 1016);
        // "The transfer of virtual CPU state ... requires an IPC in each
        // direction and costs approximately 600 cycles" -> ~300 each
        // way. The VMM lives in its own address space, so the relevant
        // figure is the cross-AS IPC.
        let one_way = BLM.ipc_cross_as();
        assert!((250..=350).contains(&one_way), "one-way IPC {one_way}");
    }

    #[test]
    fn fig8_totals_roughly_match_labels() {
        // Figure 8 top labels in ns: K8 164, K10 152, YNH 192, CNR 179,
        // WFD 131, BLM 108 (cross-AS IPC).
        let labels_ns = [164.0, 152.0, 192.0, 179.0, 131.0, 108.0];
        for (m, ns) in TABLE_1_MODELS.iter().zip(labels_ns) {
            let got = m.ident.cycles_to_ns(m.ipc_cross_as());
            let err = (got - ns).abs() / ns;
            assert!(
                err < 0.10,
                "{}: model {got:.0} ns vs paper {ns} ns",
                m.ident.name
            );
        }
    }

    #[test]
    fn fig9_totals_roughly_match_labels() {
        // Figure 9 top labels in ns: YNH 1355, CNR 1140, WFD 694,
        // BLM 527 (untagged), BLM 491 (VPID).
        let cases = [
            (YNH, false, 1355.0),
            (CNR, false, 1140.0),
            (WFD, false, 694.0),
            (BLM, false, 527.0),
            (BLM, true, 491.0),
        ];
        for (m, tagged, ns) in cases {
            let got = m.ident.cycles_to_ns(m.vtlb_miss_cost(tagged));
            let err = (got - ns).abs() / ns;
            assert!(
                err < 0.10,
                "{} tagged={tagged}: model {got:.0} ns vs paper {ns} ns",
                m.ident.name
            );
        }
    }

    #[test]
    fn transition_cost_hardware_dominates_vtlb_miss() {
        // "The hardware transition cost accounts for almost 80% of the
        // total vTLB miss overhead."
        for m in FIG9_MODELS {
            let total = m.vtlb_miss_cost(false) as f64;
            let hw = m.vm_transition_cost(false) as f64;
            assert!(
                hw / total > 0.60,
                "{}: hw share {}",
                m.ident.name,
                hw / total
            );
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn newer_cpus_have_cheaper_transitions() {
        // "transition times between guest and host mode decrease with
        // each new processor generation" (Intel line).
        assert!(YNH.vm_transition >= CNR.vm_transition - 100);
        assert!(CNR.vm_transition > WFD.vm_transition);
        assert!(WFD.vm_transition > BLM.vm_transition);
    }

    #[test]
    fn untagged_transition_costs_more() {
        assert!(BLM.vm_transition_cost(false) > BLM.vm_transition_cost(true));
        // On parts without tagged TLBs the flag cannot help.
        assert_eq!(YNH.vm_transition_cost(true), YNH.vm_transition_cost(false));
    }
}
