//! Intel 8254 programmable interval timer (channel 0, rate generator).
//!
//! The guest OS and the microhypervisor's scheduling timer both use
//! this device: channel 0 is programmed with a divisor of the
//! 1.193182 MHz input clock and pulses IRQ 0 periodically. Those pulses
//! are the "Hardware Interrupts" rows of Table 2.

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};
use crate::Cycles;

/// PIT input clock in Hz.
pub const PIT_HZ: u64 = 1_193_182;

/// Channel 0 data port.
pub const CH0: u16 = 0x40;
/// Mode/command port.
pub const MODE: u16 = 0x43;

/// IRQ line pulsed by channel 0.
pub const IRQ: u8 = 0;

enum WriteState {
    Lo,
    Hi(u8),
}

/// The 8254 model (channel 0 only; channels 1–2 are legacy DRAM
/// refresh / speaker and unused here).
pub struct Pit {
    cpu_hz: u64,
    divisor: u32,
    state: WriteState,
    running: bool,
    /// Generation counter: stale scheduled events are ignored.
    generation: u64,
    /// Total IRQ pulses generated.
    pub ticks: u64,
}

impl Pit {
    /// Creates the timer for a CPU clocked at `cpu_hz`.
    pub fn new(cpu_hz: u64) -> Pit {
        Pit {
            cpu_hz,
            divisor: 0x1_0000, // hardware reset value (65536)
            state: WriteState::Lo,
            running: false,
            generation: 0,
            ticks: 0,
        }
    }

    /// Cycles between IRQ pulses at the current divisor.
    pub fn period_cycles(&self) -> Cycles {
        (self.divisor as u64 * self.cpu_hz / PIT_HZ).max(1)
    }

    fn restart(&mut self, ctx: &mut DevCtx) {
        self.generation += 1;
        self.running = true;
        let gen = self.generation;
        let period = self.period_cycles();
        ctx.schedule(period, gen);
    }
}

impl Device for Pit {
    fn name(&self) -> &'static str {
        "i8254"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn io_write(&mut self, ctx: &mut DevCtx, port: u16, _size: OpSize, val: u32) {
        let val = val as u8;
        match port {
            MODE => {
                // Only channel 0, lobyte/hibyte access is modeled.
                self.state = WriteState::Lo;
            }
            CH0 => match self.state {
                WriteState::Lo => self.state = WriteState::Hi(val),
                WriteState::Hi(lo) => {
                    let d = (val as u32) << 8 | lo as u32;
                    self.divisor = if d == 0 { 0x1_0000 } else { d };
                    self.state = WriteState::Lo;
                    self.restart(ctx);
                }
            },
            _ => {}
        }
    }

    fn io_read(&mut self, _ctx: &mut DevCtx, port: u16, _size: OpSize) -> u32 {
        // Counter latch reads are not needed by our guests.
        if port == CH0 {
            0
        } else {
            0xff
        }
    }

    fn event(&mut self, ctx: &mut DevCtx, token: u64) {
        if token != self.generation || !self.running {
            return; // stale timer from before a reprogram
        }
        self.ticks += 1;
        ctx.pulse_irq(IRQ);
        let period = self.period_cycles();
        let gen = self.generation;
        ctx.schedule(period, gen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;
    use crate::pic;

    fn setup(cpu_hz: u64) -> (DeviceBus, PhysMem, usize) {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(Pit::new(cpu_hz)));
        bus.map_ports(0x40, 0x43, dev);
        bus.pic.io_write(pic::MASTER_DATA, 0); // unmask
        (bus, PhysMem::new(4096), dev)
    }

    fn program(bus: &mut DeviceBus, mem: &mut PhysMem, divisor: u16) {
        bus.io_write(mem, 0, MODE, OpSize::Byte, 0x34);
        bus.io_write(mem, 0, CH0, OpSize::Byte, divisor as u32 & 0xff);
        bus.io_write(mem, 0, CH0, OpSize::Byte, (divisor >> 8) as u32);
    }

    #[test]
    fn periodic_ticks() {
        let (mut bus, mut mem, _) = setup(1_193_182); // 1 cycle per PIT tick
        program(&mut bus, &mut mem, 1000);
        // First tick due at 1000 cycles.
        bus.process_events(&mut mem, 999);
        assert!(!bus.pic.intr());
        bus.process_events(&mut mem, 1000);
        assert!(bus.pic.intr());
        assert_eq!(bus.pic.ack(), Some(0x20));
        bus.pic.io_write(pic::MASTER_CMD, 0x20);
        // Second tick at 2000.
        bus.process_events(&mut mem, 2000);
        assert!(bus.pic.intr());
    }

    #[test]
    fn reprogram_cancels_old_cadence() {
        let (mut bus, mut mem, _) = setup(1_193_182);
        program(&mut bus, &mut mem, 1000);
        // Immediately reprogram to 4000 before the first tick.
        program(&mut bus, &mut mem, 4000);
        bus.process_events(&mut mem, 1500);
        assert!(!bus.pic.intr(), "old 1000-cycle tick must not fire");
        bus.process_events(&mut mem, 4000);
        assert!(bus.pic.intr());
    }

    #[test]
    fn period_scales_with_cpu_clock() {
        let p1 = Pit::new(1_193_182);
        let p2 = Pit::new(2 * 1_193_182);
        assert_eq!(p2.period_cycles(), 2 * p1.period_cycles());
    }

    #[test]
    fn zero_divisor_means_65536() {
        let mut p = Pit::new(PIT_HZ);
        p.divisor = 0x1_0000;
        assert_eq!(p.period_cycles(), 0x1_0000);
    }
}
