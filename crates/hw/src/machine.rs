//! The assembled evaluation machine: RAM, CPU cores, and the platform
//! devices of the paper's testbed (Section 8) at fixed addresses.

use nova_trace::{ring::DEFAULT_CAPACITY, Tracer};
use nova_x86::insn::OpSize;

use crate::ahci::{Ahci, DiskParams};
use crate::cost::CostModel;
use crate::cpu::{run_native, Cpu, NativeStop};
use crate::device::{DevCtx, Device, DeviceBus};
use crate::fault::{FaultInjector, FaultPlan};
use crate::iommu::Iommu;
use crate::mem::PhysMem;
use crate::nic::Nic;
use crate::pci::{PciFunction, PciHost};
use crate::pit::Pit;
use crate::serial::Serial;
use crate::vga::VgaText;
use crate::{Cycles, PAddr};

/// AHCI controller MMIO base.
pub const AHCI_BASE: PAddr = 0xfeb0_0000;
/// NIC MMIO base.
pub const NIC_BASE: PAddr = 0xfeb1_0000;
/// AHCI interrupt line.
pub const AHCI_IRQ: u8 = 11;
/// NIC interrupt line.
pub const NIC_IRQ: u8 = 10;
/// Debug-exit port: a byte write stops the machine with that code.
pub const DEBUG_EXIT_PORT: u16 = 0xf4;
/// Benchmark-mark port: a dword write records (cycle, value).
pub const MARK_PORT: u16 = 0xf5;

/// QEMU-style debug exit / benchmark mark device.
struct DebugPort;

impl Device for DebugPort {
    fn name(&self) -> &'static str {
        "debug-port"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn io_write(&mut self, ctx: &mut DevCtx, port: u16, _size: OpSize, val: u32) {
        match port {
            DEBUG_EXIT_PORT => ctx.ctl.shutdown = Some(val as u8),
            MARK_PORT => ctx.ctl.marks.push((ctx.now, val)),
            _ => {}
        }
    }
}

/// Machine construction parameters.
#[derive(Clone, Copy)]
pub struct MachineConfig {
    /// CPU cost model (selects the Table 1 processor).
    pub cost: CostModel,
    /// RAM size in bytes.
    pub ram: usize,
    /// Whether the platform has an IOMMU.
    pub iommu: bool,
    /// Number of CPU cores.
    pub cpus: usize,
}

impl MachineConfig {
    /// The paper's primary machine: Core i7 (Bloomfield), IOMMU
    /// present.
    pub fn core_i7(ram: usize) -> MachineConfig {
        MachineConfig {
            cost: crate::cost::BLM,
            ram,
            iommu: true,
            cpus: 1,
        }
    }
}

/// Well-known device bus indices on the assembled machine.
#[derive(Clone, Copy, Debug)]
pub struct DeviceIds {
    /// 8254 timer.
    pub pit: usize,
    /// COM1 UART.
    pub serial: usize,
    /// i8042 keyboard controller.
    pub kbd: usize,
    /// VGA text buffer.
    pub vga: usize,
    /// AHCI controller.
    pub ahci: usize,
    /// Ethernet controller.
    pub nic: usize,
    /// PCI host bridge.
    pub pci: usize,
    /// Debug/exit port.
    pub debug: usize,
}

/// The machine.
pub struct Machine {
    /// The cost model in effect.
    pub cost: CostModel,
    /// RAM.
    pub mem: PhysMem,
    /// Devices, interrupt controller, IOMMU, event queue.
    pub bus: DeviceBus,
    /// CPU cores.
    pub cpus: Vec<Cpu>,
    /// Global cycle clock.
    pub clock: Cycles,
    /// Bus indices of the platform devices.
    pub dev: DeviceIds,
}

impl Machine {
    /// Builds the platform.
    pub fn new(config: MachineConfig) -> Machine {
        let iommu = if config.iommu {
            Iommu::enabled()
        } else {
            Iommu::disabled()
        };
        let mut bus = DeviceBus::new(iommu);
        let hz = config.cost.ident.hz();

        let pit = bus.add_device(Box::new(Pit::new(hz)));
        bus.map_ports(0x40, 0x43, pit);

        let serial = bus.add_device(Box::new(Serial::new()));
        bus.map_ports(crate::serial::COM1, crate::serial::COM1 + 7, serial);

        let kbd = bus.add_device(Box::new(crate::kbd::Kbd::new()));
        bus.map_ports(crate::kbd::DATA, crate::kbd::STATUS, kbd);

        let vga = bus.add_device(Box::new(VgaText::new()));
        bus.map_mmio(
            crate::vga::VGA_BASE,
            (crate::vga::COLS * crate::vga::ROWS * 2) as u64,
            vga,
        );

        let ahci = bus.add_device(Box::new(Ahci::new(DiskParams::sata_250g(), AHCI_IRQ)));
        bus.map_mmio(AHCI_BASE, 0x1000, ahci);

        let nic = bus.add_device(Box::new(Nic::new(NIC_IRQ, hz)));
        bus.map_mmio(NIC_BASE, 0x4000, nic);

        let pci = bus.add_device(Box::new(PciHost::new(vec![
            PciFunction {
                device: 2,
                vendor_id: 0x8086,
                device_id: 0x2922,
                class: 0x0106,
                bar0: AHCI_BASE as u32,
                bar0_size: 0x1000,
                irq_line: AHCI_IRQ,
            },
            PciFunction {
                device: 3,
                vendor_id: 0x8086,
                device_id: 0x10de,
                class: 0x0200,
                bar0: NIC_BASE as u32,
                bar0_size: 0x4000,
                irq_line: NIC_IRQ,
            },
        ])));
        bus.map_ports(crate::pci::CONFIG_ADDRESS, 0xcff, pci);

        let debug = bus.add_device(Box::new(DebugPort));
        bus.map_ports(DEBUG_EXIT_PORT, MARK_PORT, debug);

        Machine {
            cost: config.cost,
            mem: PhysMem::new(config.ram),
            bus,
            cpus: (0..config.cpus.max(1)).map(Cpu::new).collect(),
            clock: 0,
            dev: DeviceIds {
                pit,
                serial,
                kbd,
                vga,
                ahci,
                nic,
                pci,
                debug,
            },
        }
    }

    /// Loads a program image at a physical address.
    pub fn load_image(&mut self, addr: PAddr, image: &[u8]) {
        self.mem.write_bytes(addr, image);
        for c in &mut self.cpus {
            c.flush_icache();
        }
    }

    /// Runs CPU 0 natively (no virtualization) until it stops.
    pub fn run_native(&mut self, budget: Option<Cycles>) -> NativeStop {
        let (cpu0, rest) = self.cpus.split_first_mut().expect("at least one CPU");
        let _ = rest;
        run_native(
            cpu0,
            &mut self.mem,
            &mut self.bus,
            &self.cost,
            &mut self.clock,
            budget,
        )
    }

    /// Captured serial output.
    pub fn serial_text(&mut self) -> String {
        let id = self.dev.serial;
        self.bus
            .typed_mut::<Serial>(id)
            .map(|s| s.text())
            .unwrap_or_default()
    }

    /// Rendered VGA text screen.
    pub fn vga_text(&mut self) -> String {
        let id = self.dev.vga;
        self.bus
            .typed_mut::<VgaText>(id)
            .map(|v| v.screen_text())
            .unwrap_or_default()
    }

    /// Typed handle to the AHCI controller.
    pub fn ahci(&mut self) -> &mut Ahci {
        let id = self.dev.ahci;
        self.bus.typed_mut::<Ahci>(id).expect("ahci present")
    }

    /// Typed handle to the NIC.
    pub fn nic(&mut self) -> &mut Nic {
        let id = self.dev.nic;
        self.bus.typed_mut::<Nic>(id).expect("nic present")
    }

    /// Attaches a fault-injection plan to the platform. Devices roll
    /// against it at their fault sites from then on; the same seed over
    /// the same workload reproduces the same fault trace.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.bus.fault = FaultInjector::new(plan);
    }

    /// The fault injector (for counters and the fault trace).
    pub fn faults(&self) -> &FaultInjector {
        &self.bus.fault
    }

    /// Turns on cycle-stamped tracing with the given category mask
    /// (see `nova_trace::cat`), one ring per CPU. Replaces any
    /// previously recorded trace, but carries the causal state
    /// (context allocator/register, flight recorders) over so trace
    /// context ids stay unique for the life of the machine.
    pub fn enable_tracing(&mut self, mask: u64) {
        let mut fresh = Tracer::new(self.cpus.len().max(1), DEFAULT_CAPACITY, mask);
        fresh.carry_over(&self.bus.trace);
        self.bus.trace = fresh;
    }

    /// The platform tracer (events, metrics, drop count).
    pub fn tracer(&self) -> &Tracer {
        &self.bus.trace
    }

    /// Mutable tracer handle, for kernel- and user-level tracepoints.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.bus.trace
    }

    /// Benchmark marks recorded so far.
    pub fn marks(&self) -> &[(Cycles, u32)] {
        &self.bus.ctl.marks
    }

    /// The platform's device-to-interrupt-line wiring, for the
    /// hypervisor's interrupt-remapping setup.
    pub fn wired_irqs(&self) -> Vec<(usize, u8)> {
        vec![
            (self.dev.pit, crate::pit::IRQ),
            (self.dev.kbd, crate::kbd::IRQ),
            (self.dev.ahci, AHCI_IRQ),
            (self.dev.nic, NIC_IRQ),
        ]
    }

    /// Types a sequence of scancodes at the keyboard and kicks its
    /// interrupt line.
    pub fn type_scancodes(&mut self, codes: &[u8]) {
        let id = self.dev.kbd;
        if let Some(k) = self.bus.typed_mut::<crate::kbd::Kbd>(id) {
            for c in codes {
                k.inject(*c);
            }
        }
        self.bus.events.schedule(
            self.clock + 1,
            crate::event::Event {
                device: id,
                token: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_x86::reg::Reg;
    use nova_x86::Asm;

    fn machine() -> Machine {
        Machine::new(MachineConfig::core_i7(16 << 20))
    }

    #[test]
    fn native_halt_and_exit() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 0x2a);
        a.mov_ri(Reg::Edx, DEBUG_EXIT_PORT as u32);
        a.out_dx_al();
        let img = a.finish();
        m.load_image(0x1000, &img);
        m.cpus[0].regs.eip = 0x1000;
        m.cpus[0].regs.set(Reg::Esp, 0x8000);
        assert_eq!(m.run_native(None), NativeStop::Shutdown(0x2a));
    }

    #[test]
    fn native_serial_output() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        for b in b"hello" {
            a.mov_r8i(nova_x86::Reg8::Al, *b);
            a.mov_ri(Reg::Edx, crate::serial::COM1 as u32);
            a.out_dx_al();
        }
        a.mov_ri(Reg::Edx, DEBUG_EXIT_PORT as u32);
        a.out_dx_al();
        let img = a.finish();
        m.load_image(0x1000, &img);
        m.cpus[0].regs.eip = 0x1000;
        m.cpus[0].regs.set(Reg::Esp, 0x8000);
        m.run_native(None);
        assert_eq!(m.serial_text(), "hello");
    }

    #[test]
    fn native_vga_mmio() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Ebx, crate::vga::VGA_BASE as u32);
        a.mov_m8i(nova_x86::MemRef::base_disp(Reg::Ebx, 0), b'X');
        a.mov_ri(Reg::Edx, DEBUG_EXIT_PORT as u32);
        a.out_dx_al();
        let img = a.finish();
        m.load_image(0x1000, &img);
        m.cpus[0].regs.eip = 0x1000;
        m.cpus[0].regs.set(Reg::Esp, 0x8000);
        m.run_native(None);
        assert!(m.vga_text().starts_with('X'));
    }

    #[test]
    fn native_timer_interrupt_wakes_hlt() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);

        // IDT at 0x7000; install vector 0x20 -> handler.
        let handler = a.label();
        // lidt descriptor at 0x6000: limit, base.
        a.mov_ri(Reg::Ebx, 0x6000);
        a.mov_mi(
            nova_x86::MemRef::base_disp(Reg::Ebx, 0),
            0x7000_07ff & 0xffff,
        );
        a.mov_mi(nova_x86::MemRef::base_disp(Reg::Ebx, 2), 0x7000);
        a.lidt(nova_x86::MemRef::base_disp(Reg::Ebx, 0));
        // Gate 0x20 at 0x7000 + 0x20*8.
        a.mov_ri(Reg::Ebx, 0x7000 + 0x20 * 8);
        a.mov_r_label(Reg::Ecx, handler);
        // offset low 16 | selector(8)<<16 ... write dword lo: (off & 0xffff) | 8<<16
        a.mov_rr(Reg::Eax, Reg::Ecx);
        a.alu_ri(nova_x86::AluOp::And, Reg::Eax, 0xffff);
        a.alu_ri(nova_x86::AluOp::Or, Reg::Eax, 0x8 << 16);
        a.mov_mr(nova_x86::MemRef::base_disp(Reg::Ebx, 0), Reg::Eax);
        a.mov_rr(Reg::Eax, Reg::Ecx);
        a.alu_ri(nova_x86::AluOp::And, Reg::Eax, 0xffff_0000u32);
        a.alu_ri(nova_x86::AluOp::Or, Reg::Eax, 0x8e00);
        a.mov_mr(nova_x86::MemRef::base_disp(Reg::Ebx, 4), Reg::Eax);

        // Unmask IRQ0 at the PIC, program the PIT, sti, hlt.
        a.mov_r8i(nova_x86::Reg8::Al, 0xfe); // mask all but line 0
        a.out_imm_al(0x21);
        a.mov_r8i(nova_x86::Reg8::Al, 0x34);
        a.out_imm_al(0x43);
        a.mov_r8i(nova_x86::Reg8::Al, 0xe8); // divisor 1000 = 0x3e8
        a.out_imm_al(0x40);
        a.mov_r8i(nova_x86::Reg8::Al, 0x03);
        a.out_imm_al(0x40);
        a.sti();
        a.hlt();
        // Falls through here after the handler returns: exit.
        a.mov_r8i(nova_x86::Reg8::Al, 7);
        a.mov_ri(Reg::Edx, DEBUG_EXIT_PORT as u32);
        a.out_dx_al();

        a.bind(handler);
        a.mov_r8i(nova_x86::Reg8::Al, 0x20); // EOI
        a.out_imm_al(0x20);
        a.iret();

        let img = a.finish();
        m.load_image(0x1000, &img);
        m.cpus[0].regs.eip = 0x1000;
        m.cpus[0].regs.set(Reg::Esp, 0x8000);
        assert_eq!(m.run_native(Some(100_000_000)), NativeStop::Shutdown(7));
        assert!(m.cpus[0].idle_cycles > 0, "HLT idled until the tick");
    }

    #[test]
    fn marks_record_cycles() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 1);
        a.mov_ri(Reg::Edx, MARK_PORT as u32);
        a.out_dx_eax();
        a.mov_ri(Reg::Eax, 2);
        a.out_dx_eax();
        a.mov_ri(Reg::Edx, DEBUG_EXIT_PORT as u32);
        a.out_dx_al();
        let img = a.finish();
        m.load_image(0x1000, &img);
        m.cpus[0].regs.eip = 0x1000;
        m.cpus[0].regs.set(Reg::Esp, 0x8000);
        m.run_native(None);
        let marks = m.marks();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].1, 1);
        assert_eq!(marks[1].1, 2);
        assert!(marks[1].0 > marks[0].0);
    }
}
