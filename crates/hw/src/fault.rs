//! Deterministic, seeded fault injection for the simulated platform.
//!
//! Real hardware fails: disks report task-file errors, completion
//! interrupts get lost or fire spuriously, DMA engines wedge, NICs
//! drop or corrupt packets, and the IOMMU blocks transfers. NOVA's
//! architectural claim is that user-level drivers and VMMs *contain*
//! those failures; this module makes them injectable so the claim is
//! continuously exercised rather than merely asserted.
//!
//! A [`FaultPlan`] attaches to the machine ([`crate::machine::Machine::
//! set_fault_plan`]) and drives a [`FaultInjector`] carried on the
//! device bus. Devices consult the injector at their fault sites
//! through [`crate::device::DevCtx`]. Injection is a pure function of
//! the plan's seed and the (deterministic) simulation schedule, so the
//! same seed always reproduces the same fault trace — a requirement
//! for debugging recovery paths.

use crate::Cycles;

/// The kinds of fault the platform can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// AHCI completes a valid command with a task-file error (TFES)
    /// instead of data.
    AhciTaskFileError = 0,
    /// AHCI completes a command (data moved, CI cleared) but the
    /// completion interrupt is lost.
    AhciLostIrq = 1,
    /// AHCI raises an interrupt with no completion pending.
    AhciSpuriousIrq = 2,
    /// AHCI accepts a command but the DMA engine wedges: the request
    /// never completes until the controller is reset (GHC.HR).
    AhciStuckDma = 3,
    /// The NIC drops an inbound packet.
    NicPacketDrop = 4,
    /// The NIC delivers a packet with corrupted payload.
    NicPacketCorrupt = 5,
    /// A DMA transaction is blocked at the IOMMU (recorded as a
    /// [`crate::iommu::DmaFault`]), as if the mapping were stale.
    IommuFault = 6,
    /// A user-level VMM dies mid-exit: the kernel faults the VMM's PD
    /// just before delivering a VM exit to it, as if the VMM process
    /// had crashed. Exercises the root supervisor's microreboot path.
    VmmCrash = 7,
}

/// Number of fault kinds.
pub const KINDS: usize = 8;

/// All kinds, in discriminant order.
pub const ALL_KINDS: [FaultKind; KINDS] = [
    FaultKind::AhciTaskFileError,
    FaultKind::AhciLostIrq,
    FaultKind::AhciSpuriousIrq,
    FaultKind::AhciStuckDma,
    FaultKind::NicPacketDrop,
    FaultKind::NicPacketCorrupt,
    FaultKind::IommuFault,
    FaultKind::VmmCrash,
];

/// A seeded schedule of faults: per-kind probabilities and caps.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// PRNG seed; the same seed reproduces the same fault schedule.
    pub seed: u64,
    /// Per-kind injection probability in units of 1/65536 per fault
    /// site visit (0 = never, 65536 = always).
    pub rate: [u32; KINDS],
    /// Per-kind cap on total injections (`u64::MAX` = unlimited).
    pub max: [u64; KINDS],
}

impl FaultPlan {
    /// A plan that injects nothing (the default for every machine).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rate: [0; KINDS],
            max: [u64::MAX; KINDS],
        }
    }

    /// An empty plan with the given seed; add kinds with
    /// [`FaultPlan::with`].
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Enables `kind` at `rate_per_64k`/65536 probability, capped at
    /// `max` total injections.
    pub fn with(mut self, kind: FaultKind, rate_per_64k: u32, max: u64) -> FaultPlan {
        self.rate[kind as usize] = rate_per_64k;
        self.max[kind as usize] = max;
        self
    }

    /// `true` if any kind can fire.
    pub fn active(&self) -> bool {
        self.rate.iter().any(|&r| r > 0)
    }
}

/// One injected fault, in order of injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Simulation cycle at which the fault was injected.
    pub at: Cycles,
    /// The kind injected.
    pub kind: FaultKind,
    /// Site-specific detail (slot, sequence number, bus address…).
    pub detail: u64,
}

/// The injector: plan + PRNG state + accounting.
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    /// Per-kind injected counts (indexed by `FaultKind as usize`).
    pub injected: [u64; KINDS],
    /// Ordered trace of every injected fault (determinism checks and
    /// the chaos test's accounting).
    pub trace: Vec<FaultRecord>,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            // splitmix-style seed conditioning so seed 0 works too.
            state: plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            injected: [0; KINDS],
            trace: Vec::new(),
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultPlan::none())
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Consults the plan at a fault site: returns `true` if the fault
    /// should be injected now, recording it in the counters and trace.
    pub fn roll(&mut self, now: Cycles, kind: FaultKind, detail: u64) -> bool {
        let k = kind as usize;
        let rate = self.plan.rate[k];
        if rate == 0 || self.injected[k] >= self.plan.max[k] {
            return false;
        }
        let hit = (self.next() & 0xffff) < rate as u64;
        if hit {
            self.injected[k] += 1;
            self.trace.push(FaultRecord {
                at: now,
                kind,
                detail,
            });
        }
        hit
    }

    /// Injected count for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.injected[kind as usize]
    }

    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut f = FaultInjector::disabled();
        for i in 0..10_000 {
            assert!(!f.roll(i, FaultKind::AhciTaskFileError, 0));
        }
        assert_eq!(f.total(), 0);
        assert!(f.trace.is_empty());
    }

    #[test]
    fn rates_and_caps_respected() {
        let plan = FaultPlan::seeded(42)
            .with(FaultKind::NicPacketDrop, 65536, 5)
            .with(FaultKind::AhciLostIrq, 32768, u64::MAX);
        let mut f = FaultInjector::new(plan);
        for i in 0..1000 {
            f.roll(i, FaultKind::NicPacketDrop, i);
            f.roll(i, FaultKind::AhciLostIrq, i);
        }
        assert_eq!(f.count(FaultKind::NicPacketDrop), 5, "cap respected");
        let lost = f.count(FaultKind::AhciLostIrq);
        assert!(
            (300..700).contains(&lost),
            "~half of 1000 rolls at rate 1/2, got {lost}"
        );
        assert_eq!(f.total() as usize, f.trace.len());
    }

    #[test]
    fn same_seed_same_trace() {
        let plan = FaultPlan::seeded(7)
            .with(FaultKind::AhciTaskFileError, 20000, u64::MAX)
            .with(FaultKind::IommuFault, 100, u64::MAX);
        let run = || {
            let mut f = FaultInjector::new(plan);
            for i in 0..500 {
                f.roll(i * 3, FaultKind::AhciTaskFileError, i);
                f.roll(i * 3 + 1, FaultKind::IommuFault, i);
            }
            f.trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_different_trace() {
        let mk = |seed| {
            let mut f = FaultInjector::new(FaultPlan::seeded(seed).with(
                FaultKind::NicPacketDrop,
                32768,
                u64::MAX,
            ));
            for i in 0..64 {
                f.roll(i, FaultKind::NicPacketDrop, i);
            }
            f.trace
        };
        assert_ne!(mk(1), mk(2));
    }
}
