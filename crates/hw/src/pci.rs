//! PCI configuration space, accessed through the 0xCF8/0xCFC port
//! mechanism. Drivers (the NOVA user-level disk and network servers,
//! and the guest OS when devices are assigned directly) enumerate the
//! bus here to find vendor/device ids, class codes, BARs and interrupt
//! lines.

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};

/// Config-address port.
pub const CONFIG_ADDRESS: u16 = 0xcf8;
/// Config-data port.
pub const CONFIG_DATA: u16 = 0xcfc;

/// One PCI function's configuration header (type 0, the fields we
/// model).
#[derive(Clone, Copy, Debug)]
pub struct PciFunction {
    /// Device number on bus 0.
    pub device: u8,
    /// Vendor id.
    pub vendor_id: u16,
    /// Device id.
    pub device_id: u16,
    /// Class code (base << 8 | subclass).
    pub class: u16,
    /// BAR0: MMIO base (reported pre-assigned; writes ignored).
    pub bar0: u32,
    /// BAR0 window size in bytes.
    pub bar0_size: u32,
    /// Interrupt line (platform PIC input).
    pub irq_line: u8,
}

impl PciFunction {
    fn config_read(&self, reg: u8) -> u32 {
        match reg {
            0x00 => self.vendor_id as u32 | (self.device_id as u32) << 16,
            0x08 => (self.class as u32) << 16,
            0x10 => self.bar0,
            0x3c => self.irq_line as u32 | 0x0100, // pin INTA#
            _ => 0,
        }
    }
}

/// The host bridge + configuration mechanism.
pub struct PciHost {
    functions: Vec<PciFunction>,
    address: u32,
}

impl PciHost {
    /// Creates the host bridge with the platform's function list.
    pub fn new(functions: Vec<PciFunction>) -> PciHost {
        PciHost {
            functions,
            address: 0,
        }
    }

    fn decode_address(&self) -> Option<(&PciFunction, u8)> {
        if self.address & 0x8000_0000 == 0 {
            return None;
        }
        let bus = (self.address >> 16) & 0xff;
        let dev = ((self.address >> 11) & 0x1f) as u8;
        let func = (self.address >> 8) & 0x7;
        let reg = (self.address & 0xfc) as u8;
        if bus != 0 || func != 0 {
            return None;
        }
        self.functions
            .iter()
            .find(|f| f.device == dev)
            .map(|f| (f, reg))
    }

    /// Scans bus 0 and returns all present functions (host-side helper
    /// mirroring what a driver does through the ports).
    pub fn enumerate(&self) -> &[PciFunction] {
        &self.functions
    }
}

impl Device for PciHost {
    fn name(&self) -> &'static str {
        "pci-host"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn io_read(&mut self, _ctx: &mut DevCtx, port: u16, size: OpSize) -> u32 {
        match port {
            CONFIG_ADDRESS => self.address,
            CONFIG_DATA..=0xcff => match self.decode_address() {
                Some((f, reg)) => {
                    let v = f.config_read(reg);
                    match size {
                        OpSize::Dword => v,
                        OpSize::Byte => (v >> (8 * (port - CONFIG_DATA) as u32)) & 0xff,
                    }
                }
                None => size.mask(),
            },
            _ => size.mask(),
        }
    }

    fn io_write(&mut self, _ctx: &mut DevCtx, port: u16, _size: OpSize, val: u32) {
        if port == CONFIG_ADDRESS {
            self.address = val;
        }
        // BAR writes and command-register writes are accepted and
        // ignored: the platform pre-assigns resources.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;

    fn setup() -> (DeviceBus, PhysMem) {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let host = PciHost::new(vec![
            PciFunction {
                device: 2,
                vendor_id: 0x8086,
                device_id: 0x2922,
                class: 0x0106, // SATA AHCI
                bar0: 0xfeb0_0000,
                bar0_size: 0x1000,
                irq_line: 11,
            },
            PciFunction {
                device: 3,
                vendor_id: 0x8086,
                device_id: 0x10de,
                class: 0x0200, // Ethernet
                bar0: 0xfeb1_0000,
                bar0_size: 0x1000,
                irq_line: 10,
            },
        ]);
        let dev = bus.add_device(Box::new(host));
        bus.map_ports(CONFIG_ADDRESS, 0xcff, dev);
        (bus, PhysMem::new(16))
    }

    fn cfg_read(bus: &mut DeviceBus, mem: &mut PhysMem, dev: u8, reg: u8) -> u32 {
        let addr = 0x8000_0000 | (dev as u32) << 11 | reg as u32;
        bus.io_write(mem, 0, CONFIG_ADDRESS, OpSize::Dword, addr);
        bus.io_read(mem, 0, CONFIG_DATA, OpSize::Dword)
    }

    #[test]
    fn enumerate_devices() {
        let (mut bus, mut mem) = setup();
        assert_eq!(cfg_read(&mut bus, &mut mem, 2, 0), 0x2922_8086);
        assert_eq!(cfg_read(&mut bus, &mut mem, 3, 0), 0x10de_8086);
        // Absent slot reads all-ones.
        assert_eq!(cfg_read(&mut bus, &mut mem, 9, 0), 0xffff_ffff);
    }

    #[test]
    fn class_bar_irq() {
        let (mut bus, mut mem) = setup();
        assert_eq!(cfg_read(&mut bus, &mut mem, 2, 0x08) >> 16, 0x0106);
        assert_eq!(cfg_read(&mut bus, &mut mem, 2, 0x10), 0xfeb0_0000);
        assert_eq!(cfg_read(&mut bus, &mut mem, 2, 0x3c) & 0xff, 11);
        assert_eq!(cfg_read(&mut bus, &mut mem, 3, 0x3c) & 0xff, 10);
    }

    #[test]
    fn disabled_address_bit() {
        let (mut bus, mut mem) = setup();
        bus.io_write(&mut mem, 0, CONFIG_ADDRESS, OpSize::Dword, 2 << 11);
        assert_eq!(
            bus.io_read(&mut mem, 0, CONFIG_DATA, OpSize::Dword),
            0xffff_ffff
        );
    }
}
