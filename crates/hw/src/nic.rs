//! Gigabit Ethernet controller model (Intel 82567-like) with a receive
//! descriptor ring and interrupt coalescing, plus a token-bucket
//! traffic generator standing in for the paper's Netperf sender
//! (Section 8.3).
//!
//! Interrupt coalescing delays the next interrupt until multiple
//! packets have arrived (or the throttle interval expires), limiting
//! the rate to ~20 000 interrupts per second — the plateau at which the
//! native and direct curves of Figure 7 converge.

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};
use crate::fault::FaultKind;
use crate::Cycles;

/// Register offsets (subset of the e1000e layout).
pub mod regs {
    /// Device control.
    pub const CTRL: u32 = 0x0000;
    /// Device status (RO).
    pub const STATUS: u32 = 0x0008;
    /// Interrupt cause read (read-to-clear).
    pub const ICR: u32 = 0x00c0;
    /// Interrupt throttle (coalescing interval, device ticks).
    pub const ITR: u32 = 0x00c4;
    /// Interrupt mask set.
    pub const IMS: u32 = 0x00d0;
    /// Interrupt mask clear.
    pub const IMC: u32 = 0x00d8;
    /// Receive control.
    pub const RCTL: u32 = 0x0100;
    /// Receive descriptor base (low).
    pub const RDBAL: u32 = 0x2800;
    /// Receive descriptor base (high).
    pub const RDBAH: u32 = 0x2804;
    /// Receive descriptor ring length in bytes.
    pub const RDLEN: u32 = 0x2808;
    /// Receive descriptor head (device-owned).
    pub const RDH: u32 = 0x2810;
    /// Receive descriptor tail (driver-owned).
    pub const RDT: u32 = 0x2818;
}

/// ICR bit: receive timer expired (packets delivered).
pub const ICR_RXT0: u32 = 1 << 7;
/// Receive descriptor status: descriptor done.
pub const RXD_STAT_DD: u8 = 1 << 0;

/// Descriptor size in bytes (legacy receive descriptor).
pub const DESC_SIZE: u64 = 16;

const EV_PACKET: u64 = 1;
const EV_ITR: u64 = 2;

/// A stream the generator produces: fixed-size packets at a constant
/// bandwidth (token-bucket shaped, as in the paper's sender setup).
#[derive(Clone, Copy, Debug)]
pub struct Stream {
    /// Payload size in bytes (the paper uses 64, 1472 and 9188).
    pub packet_bytes: u32,
    /// Cycles between packet arrivals.
    pub interarrival: Cycles,
    /// Packets remaining to generate.
    pub remaining: u64,
}

impl Stream {
    /// Builds a stream from a bandwidth in Mbit/s given the CPU clock.
    pub fn from_bandwidth(
        mbit_s: u64,
        packet_bytes: u32,
        cpu_hz: u64,
        duration_cycles: Cycles,
    ) -> Stream {
        let bits_per_packet = packet_bytes as u64 * 8;
        let packets_per_sec = (mbit_s * 1_000_000) / bits_per_packet.max(1);
        let interarrival = (cpu_hz / packets_per_sec.max(1)).max(1);
        Stream {
            packet_bytes,
            interarrival,
            remaining: duration_cycles / interarrival,
        }
    }
}

/// The NIC.
pub struct Nic {
    irq_line: u8,
    cpu_hz: u64,
    icr: u32,
    ims: u32,
    itr: u32,
    rdba: u64,
    rdlen: u32,
    rdh: u32,
    rdt: u32,
    stream: Option<Stream>,
    /// Packets delivered since the last interrupt (coalescing counter).
    coalesced: u32,
    /// Whether the throttle timer is armed.
    itr_armed: bool,
    seq: u64,
    /// Packets delivered into the ring.
    pub rx_delivered: u64,
    /// Packets dropped for lack of descriptors.
    pub rx_dropped: u64,
    /// Interrupts raised.
    pub irqs: u64,
    /// Bytes delivered.
    pub rx_bytes: u64,
}

impl Nic {
    /// Creates the controller on `irq_line` for a CPU clocked at
    /// `cpu_hz` (used to convert the ITR to cycles).
    pub fn new(irq_line: u8, cpu_hz: u64) -> Nic {
        Nic {
            irq_line,
            cpu_hz,
            icr: 0,
            ims: 0,
            itr: 0,
            rdba: 0,
            rdlen: 0,
            rdh: 0,
            rdt: 0,
            stream: None,
            coalesced: 0,
            itr_armed: false,
            seq: 0,
            rx_delivered: 0,
            rx_dropped: 0,
            irqs: 0,
            rx_bytes: 0,
        }
    }

    /// Starts the traffic generator (the simulated Netperf sender).
    /// Must be followed by a device event kick via
    /// [`Nic::kick_stream`].
    pub fn set_stream(&mut self, stream: Stream) {
        self.stream = Some(stream);
    }

    /// Schedules the first packet arrival; call after `set_stream`.
    pub fn kick_stream(&mut self, ctx: &mut DevCtx) {
        if let Some(s) = self.stream {
            ctx.schedule(s.interarrival, EV_PACKET);
        }
    }

    /// Interrupt-throttle interval in cycles (~51.2 µs granularity on
    /// real parts; modeled as ITR value × 256 ns).
    fn itr_cycles(&self) -> Cycles {
        if self.itr == 0 {
            // Even "unthrottled", back-to-back interrupts are limited
            // by the ~20k/s plateau the paper measures.
            self.cpu_hz / 20_000
        } else {
            (self.itr as u64 * 256 * self.cpu_hz / 1_000_000_000).max(1)
        }
    }

    fn ring_size(&self) -> u32 {
        (self.rdlen as u64 / DESC_SIZE) as u32
    }

    fn deliver_packet(&mut self, ctx: &mut DevCtx, bytes: u32) {
        if ctx.roll_fault(FaultKind::NicPacketDrop, self.seq) {
            // Dropped on the wire: the sequence number is consumed, so
            // the driver observes a gap in the stream.
            self.seq += 1;
            return;
        }
        let ring = self.ring_size();
        if ring == 0 || self.rdh == self.rdt {
            self.rx_dropped += 1;
            return;
        }
        let desc_addr = self.rdba + self.rdh as u64 * DESC_SIZE;
        let Some(desc) = ctx.dma_read(desc_addr, 16) else {
            self.rx_dropped += 1;
            return;
        };
        let buf = u64::from_le_bytes(desc[0..8].try_into().unwrap());

        // Packet payload: sequence number then a fill pattern.
        let mut payload = Vec::with_capacity(bytes as usize);
        payload.extend_from_slice(&self.seq.to_le_bytes());
        payload.resize(bytes as usize, (self.seq & 0xff) as u8);
        if ctx
            .fault
            .roll(ctx.now, FaultKind::NicPacketCorrupt, self.seq)
            && payload.len() > 8
        {
            // Corrupt the fill pattern, leaving the sequence number
            // intact: the driver sees a payload-integrity error rather
            // than a gap.
            payload[8] ^= 0xff;
        }
        self.seq += 1;
        if !ctx.dma_write(buf, &payload) {
            self.rx_dropped += 1;
            return;
        }
        // Write back length + DD status.
        let mut wb = desc;
        wb[8] = bytes as u8;
        wb[9] = (bytes >> 8) as u8;
        wb[12] = RXD_STAT_DD;
        if !ctx.dma_write(desc_addr, &wb) {
            self.rx_dropped += 1;
            return;
        }
        self.rdh = (self.rdh + 1) % ring;
        self.rx_delivered += 1;
        self.rx_bytes += bytes as u64;
        self.coalesced += 1;

        if !self.itr_armed {
            self.itr_armed = true;
            ctx.schedule(self.itr_cycles(), EV_ITR);
        }
    }
}

impl Device for Nic {
    fn name(&self) -> &'static str {
        "e1000e"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn mmio_read(&mut self, ctx: &mut DevCtx, off: u32, _size: OpSize) -> u32 {
        match off {
            regs::STATUS => 0x80080783, // link up, full duplex
            regs::ICR => {
                let v = self.icr;
                self.icr = 0; // read-to-clear
                ctx.lower_irq(self.irq_line);
                v
            }
            regs::ITR => self.itr,
            regs::IMS => self.ims,
            regs::RDH => self.rdh,
            regs::RDT => self.rdt,
            regs::RDLEN => self.rdlen,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, _ctx: &mut DevCtx, off: u32, _size: OpSize, val: u32) {
        match off {
            regs::ITR => self.itr = val,
            regs::IMS => self.ims |= val,
            regs::IMC => self.ims &= !val,
            regs::RDBAL => self.rdba = (self.rdba & !0xffff_ffff) | val as u64,
            regs::RDBAH => self.rdba = (self.rdba & 0xffff_ffff) | (val as u64) << 32,
            regs::RDLEN => self.rdlen = val,
            regs::RDH => self.rdh = val,
            regs::RDT => self.rdt = val % self.ring_size().max(1),
            _ => {}
        }
    }

    fn event(&mut self, ctx: &mut DevCtx, token: u64) {
        match token {
            EV_PACKET => {
                let Some(mut s) = self.stream else { return };
                if s.remaining == 0 {
                    self.stream = None;
                    return;
                }
                s.remaining -= 1;
                self.deliver_packet(ctx, s.packet_bytes);
                self.stream = Some(s);
                ctx.schedule(s.interarrival, EV_PACKET);
            }
            EV_ITR => {
                self.itr_armed = false;
                if self.coalesced > 0 {
                    self.coalesced = 0;
                    self.icr |= ICR_RXT0;
                    if self.ims & ICR_RXT0 != 0 {
                        self.irqs += 1;
                        ctx.raise_irq(self.irq_line);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;
    use crate::pic;

    const BASE: u64 = 0xfeb1_0000;
    const IRQ: u8 = 10;
    const HZ: u64 = 2_670_000_000;

    fn setup(ring_entries: u32) -> (DeviceBus, PhysMem, usize) {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(Nic::new(IRQ, HZ)));
        bus.map_mmio(BASE, 0x4000, dev);
        bus.pic.io_write(pic::MASTER_DATA, 0);
        bus.pic.io_write(pic::SLAVE_DATA, 0);
        let mut mem = PhysMem::new(16 << 20);
        // Ring at 0x10_0000, buffers at 0x20_0000 + i*16K.
        for i in 0..ring_entries as u64 {
            mem.write_u64(0x10_0000 + i * DESC_SIZE, 0x20_0000 + i * 0x4000);
        }
        let w = |bus: &mut DeviceBus, mem: &mut PhysMem, off: u32, val: u32| {
            bus.mmio_write(mem, 0, BASE + off as u64, OpSize::Dword, val);
        };
        w(&mut bus, &mut mem, regs::RDBAL, 0x10_0000);
        w(
            &mut bus,
            &mut mem,
            regs::RDLEN,
            ring_entries * DESC_SIZE as u32,
        );
        w(&mut bus, &mut mem, regs::RDH, 0);
        w(&mut bus, &mut mem, regs::RDT, ring_entries - 1);
        w(&mut bus, &mut mem, regs::IMS, ICR_RXT0);
        (bus, mem, dev)
    }

    fn start_stream(bus: &mut DeviceBus, mem: &mut PhysMem, dev: usize, s: Stream) {
        // Configure the generator through the typed device handle, then
        // kick it via an immediate event.
        {
            let d = bus.device_mut(dev).unwrap();
            // Safe downcast by name contract: tests construct the Nic.
            let _ = d;
        }
        // Re-fetch with concrete type through a helper on the bus is not
        // available; schedule the first arrival manually.
        bus.typed_mut::<Nic>(dev).unwrap().set_stream(s);
        bus.events.schedule(
            s.interarrival,
            crate::event::Event {
                device: dev,
                token: EV_PACKET,
            },
        );
        let _ = mem;
    }

    #[test]
    fn packets_land_in_ring_and_coalesce() {
        let (mut bus, mut mem, dev) = setup(64);
        let s = Stream {
            packet_bytes: 1472,
            interarrival: 10_000,
            remaining: 10,
        };
        start_stream(&mut bus, &mut mem, dev, s);
        // Run long enough for all 10 packets + the throttle timer.
        bus.process_events(&mut mem, 10_000 * 12 + HZ / 20_000 + 1);
        assert!(bus.pic.intr(), "coalesced interrupt raised");
        // First descriptor written back with DD.
        assert_eq!(mem.read_u8(0x10_0000 + 12), RXD_STAT_DD);
        // First packet has sequence 0 and the pattern fill.
        assert_eq!(mem.read_u64(0x20_0000), 0);
        {
            let n = bus.typed_mut::<Nic>(dev).unwrap();
            assert_eq!(n.rx_delivered, 10);
            assert_eq!(n.rx_dropped, 0);
            assert!(
                n.irqs < 10,
                "coalescing must merge interrupts, got {}",
                n.irqs
            );
        }
    }

    #[test]
    fn icr_read_clears_and_lowers_line() {
        let (mut bus, mut mem, dev) = setup(64);
        start_stream(
            &mut bus,
            &mut mem,
            dev,
            Stream {
                packet_bytes: 64,
                interarrival: 1000,
                remaining: 1,
            },
        );
        bus.process_events(&mut mem, HZ); // plenty
        assert!(bus.pic.intr());
        assert_eq!(bus.pic.ack(), Some(0x28 + 2), "IRQ 10 via slave line 2");
        let icr = bus.mmio_read(&mut mem, 0, BASE + regs::ICR as u64, OpSize::Dword);
        assert_ne!(icr & ICR_RXT0, 0);
        let icr2 = bus.mmio_read(&mut mem, 0, BASE + regs::ICR as u64, OpSize::Dword);
        assert_eq!(icr2, 0, "read-to-clear");
        bus.pic.io_write(crate::pic::SLAVE_CMD, 0x20);
        bus.pic.io_write(crate::pic::MASTER_CMD, 0x20);
        assert!(!bus.pic.intr(), "no retrigger after ICR read and EOI");
    }

    #[test]
    fn ring_exhaustion_drops() {
        let (mut bus, mut mem, dev) = setup(4);
        // Tail at 3: 3 usable descriptors before head meets tail.
        start_stream(
            &mut bus,
            &mut mem,
            dev,
            Stream {
                packet_bytes: 64,
                interarrival: 100,
                remaining: 10,
            },
        );
        bus.process_events(&mut mem, HZ);
        {
            let n = bus.typed_mut::<Nic>(dev).unwrap();
            assert_eq!(n.rx_delivered, 3);
            assert_eq!(n.rx_dropped, 7);
        }
    }

    #[test]
    fn interrupt_rate_plateaus_near_20k() {
        let (mut bus, mut mem, dev) = setup(256);
        // A hammering stream: 1 packet per 1000 cycles for ~0.05 s.
        let duration = HZ / 20;
        start_stream(
            &mut bus,
            &mut mem,
            dev,
            Stream {
                packet_bytes: 64,
                interarrival: 1000,
                remaining: duration / 1000,
            },
        );
        // Keep refilling the tail so nothing drops.
        let mut t = 0;
        while t < duration + HZ / 10_000 {
            t += 100_000;
            bus.process_events(&mut mem, t);
            let rdh = bus.mmio_read(&mut mem, t, BASE + regs::RDH as u64, OpSize::Dword);
            let newtail = if rdh == 0 { 255 } else { rdh - 1 };
            bus.mmio_write(&mut mem, t, BASE + regs::RDT as u64, OpSize::Dword, newtail);
            bus.mmio_read(&mut mem, t, BASE + regs::ICR as u64, OpSize::Dword);
        }
        {
            let n = bus.typed_mut::<Nic>(dev).unwrap();
            let secs = duration as f64 / HZ as f64;
            let rate = n.irqs as f64 / secs;
            assert!(
                (10_000.0..=25_000.0).contains(&rate),
                "coalesced irq rate {rate:.0}/s should plateau near 20k"
            );
            assert_eq!(n.rx_dropped, 0);
        }
    }
}
