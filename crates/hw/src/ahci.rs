//! AHCI SATA host bus adapter with an attached disk model.
//!
//! The register interface follows the AHCI layout closely enough that a
//! driver performs the same accesses the paper counts (Section 8.2):
//! one MMIO write to issue a command (P0CI doorbell) and five MMIO
//! accesses to process the completion interrupt (read IS, clear IS,
//! read P0IS, clear P0IS, read P0CI) — six per request, which under
//! full virtualization become the six MMIO exits of Table 2, and which
//! interrupt virtualization doubles.
//!
//! Commands are fetched from memory: a command header in the command
//! list points at a command table holding a host-to-device FIS (READ /
//! WRITE DMA EXT) and a PRDT scatter-gather list. All of it moves by
//! DMA through the IOMMU.
//!
//! The disk model charges a fixed per-request latency plus a
//! bandwidth-proportional transfer time, giving Figure 6 its crossover:
//! below ~8 KB the request rate is latency-bound and CPU utilization is
//! flat; above it the disk bandwidth limits throughput.
//!
//! Command structures arrive by DMA from driver-owned memory and are
//! untrusted: malformed headers degrade to a task-file error (TFES),
//! never a model panic. The module is lint-gated panic-free.

#![deny(clippy::indexing_slicing, clippy::unwrap_used, clippy::panic)]

use std::collections::HashMap;

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};
use crate::fault::FaultKind;
use crate::Cycles;

/// Sector size in bytes.
pub const SECTOR: u32 = 512;

/// Register offsets (subset of AHCI).
pub mod regs {
    /// Host capabilities (RO).
    pub const CAP: u32 = 0x00;
    /// Global host control.
    pub const GHC: u32 = 0x04;
    /// Interrupt status (one bit per port, write-1-to-clear).
    pub const IS: u32 = 0x08;
    /// Ports implemented (RO).
    pub const PI: u32 = 0x0c;
    /// Port 0 command-list base.
    pub const P0CLB: u32 = 0x100;
    /// Port 0 command-list base, upper 32 bits.
    pub const P0CLB2: u32 = 0x104;
    /// Port 0 FIS base.
    pub const P0FB: u32 = 0x108;
    /// Port 0 interrupt status (W1C).
    pub const P0IS: u32 = 0x110;
    /// Port 0 interrupt enable.
    pub const P0IE: u32 = 0x114;
    /// Port 0 command/status.
    pub const P0CMD: u32 = 0x118;
    /// Port 0 task-file data.
    pub const P0TFD: u32 = 0x120;
    /// Port 0 command issue (doorbell).
    pub const P0CI: u32 = 0x138;
}

/// ATA READ DMA EXT.
pub const ATA_READ_DMA_EXT: u8 = 0x25;
/// ATA WRITE DMA EXT.
pub const ATA_WRITE_DMA_EXT: u8 = 0x35;

/// Disk timing and geometry parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Fixed cycles per request (command, seek, rotation).
    pub fixed_latency: Cycles,
    /// Sustained bandwidth in bytes per cycle (fractional via ratio).
    pub bytes_per_kcycle: u64,
    /// Capacity in sectors.
    pub sectors: u64,
}

impl DiskParams {
    /// A SATA disk resembling the paper's 250 GB Hitachi behind a
    /// 2.67 GHz clock: ~34 µs fixed latency (90 kcycles), ~120 MB/s.
    pub fn sata_250g() -> DiskParams {
        DiskParams {
            fixed_latency: 240_000,
            bytes_per_kcycle: 45, // ~120 MB/s at 2.67 GHz
            sectors: 250 * 1_000_000_000 / SECTOR as u64,
        }
    }

    /// Cycles to transfer `bytes` at the sustained rate.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        bytes * 1000 / self.bytes_per_kcycle
    }
}

struct Request {
    write: bool,
    lba: u64,
    sectors: u32,
    /// PRDT entries: (bus address, byte count).
    prdt: Vec<(u64, u32)>,
    slot: u8,
}

/// The HBA + disk.
pub struct Ahci {
    params: DiskParams,
    irq_line: u8,
    clb: u64,
    fb: u64,
    is: u32,
    p0is: u32,
    p0ie: u32,
    ci: u32,
    /// In-flight request (one outstanding command modeled).
    inflight: Option<Request>,
    /// Written sectors (overlay over the deterministic pattern).
    store: HashMap<u64, Vec<u8>>,
    /// Completed requests since construction.
    pub completed: u64,
    /// Total bytes moved.
    pub bytes_moved: u64,
    /// Commands that failed to parse or faulted on DMA.
    pub errors: u64,
    /// Controller resets via GHC.HR (drivers use this to recover from
    /// a wedged DMA engine).
    pub resets: u64,
}

impl Ahci {
    /// Creates the adapter on interrupt line `irq_line`.
    pub fn new(params: DiskParams, irq_line: u8) -> Ahci {
        Ahci {
            params,
            irq_line,
            clb: 0,
            fb: 0,
            is: 0,
            p0is: 0,
            p0ie: 0,
            ci: 0,
            inflight: None,
            store: HashMap::new(),
            completed: 0,
            bytes_moved: 0,
            errors: 0,
            resets: 0,
        }
    }

    /// Deterministic content of an unwritten sector.
    fn pattern(lba: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(SECTOR as usize);
        let mut x = lba.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..SECTOR / 8 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            v.extend_from_slice(&x.to_le_bytes());
        }
        v
    }

    /// Reads sector content (overlay or pattern).
    pub fn sector(&self, lba: u64) -> Vec<u8> {
        self.store
            .get(&lba)
            .cloned()
            .unwrap_or_else(|| Self::pattern(lba))
    }

    fn parse_command(&mut self, ctx: &mut DevCtx, slot: u8) -> Option<Request> {
        // Command header: 32 bytes at CLB + slot*32.
        let hdr = ctx.dma_read(self.clb + slot as u64 * 32, 32)?;
        // Little-endian field extraction without panicking slices: the
        // header and FIS are fixed-size DMA reads, but nothing about
        // their *content* is trusted.
        let le = |b: &[u8], off: usize, n: usize| -> u64 {
            b.get(off..off + n)
                .map(|s| s.iter().rev().fold(0u64, |a, &x| a << 8 | x as u64))
                .unwrap_or(0)
        };
        let dw0 = le(&hdr, 0, 4) as u32;
        let prdtl = (dw0 >> 16) as usize;
        let ctba = le(&hdr, 8, 8);

        // Command table: CFIS (64 bytes) + PRDT at +0x80.
        let cfis = ctx.dma_read(ctba, 64)?;
        let fis = |i: usize| cfis.get(i).copied().unwrap_or(0);
        if fis(0) != 0x27 {
            return None; // not a host-to-device FIS
        }
        let cmd = fis(2);
        let write = match cmd {
            ATA_READ_DMA_EXT => false,
            ATA_WRITE_DMA_EXT => true,
            _ => return None,
        };
        let lba = fis(4) as u64
            | (fis(5) as u64) << 8
            | (fis(6) as u64) << 16
            | (fis(8) as u64) << 24
            | (fis(9) as u64) << 32
            | (fis(10) as u64) << 40;
        let count = fis(12) as u32 | (fis(13) as u32) << 8;

        let prdt_raw = ctx.dma_read(ctba + 0x80, prdtl * 16)?;
        let mut prdt = Vec::with_capacity(prdtl.min(64));
        for e in prdt_raw.chunks_exact(16) {
            let dba = le(e, 0, 8);
            let dbc = le(e, 12, 4) as u32 & 0x3f_ffff;
            prdt.push((dba, dbc + 1));
        }

        Some(Request {
            write,
            lba,
            sectors: count,
            prdt,
            slot,
        })
    }

    fn issue(&mut self, ctx: &mut DevCtx, slot: u8) {
        match self.parse_command(ctx, slot) {
            Some(req) => {
                if ctx.roll_fault(FaultKind::AhciStuckDma, slot as u64) {
                    // DMA engine wedges: the command is accepted (CI
                    // stays set) but never completes until GHC.HR.
                    self.inflight = Some(req);
                    return;
                }
                let bytes = req.sectors as u64 * SECTOR as u64;
                let delay = self.params.fixed_latency + self.params.transfer_cycles(bytes);
                self.inflight = Some(req);
                ctx.schedule(delay, slot as u64);
                if self.p0ie != 0 && ctx.roll_fault(FaultKind::AhciSpuriousIrq, slot as u64) {
                    // Interrupt with no completion pending: the driver
                    // will find IS clear.
                    ctx.pulse_irq(self.irq_line);
                }
            }
            None => {
                self.errors += 1;
                // Report a task-file error: completion with error status.
                self.ci &= !(1 << slot);
                self.p0is |= 1 << 30; // TFES
                self.is |= 1;
                if self.p0ie != 0 {
                    ctx.raise_irq(self.irq_line);
                }
            }
        }
    }
}

impl Device for Ahci {
    fn name(&self) -> &'static str {
        "ahci"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn mmio_read(&mut self, _ctx: &mut DevCtx, off: u32, _size: OpSize) -> u32 {
        match off {
            regs::CAP => 0x4000_0000, // 64-bit addressing, 1 port
            regs::GHC => 0x8000_0002, // AE | IE
            regs::IS => self.is,
            regs::PI => 1,
            regs::P0CLB => self.clb as u32,
            regs::P0CLB2 => (self.clb >> 32) as u32,
            regs::P0FB => self.fb as u32,
            regs::P0IS => self.p0is,
            regs::P0IE => self.p0ie,
            regs::P0CMD => 0x0000_c011, // started, FIS receive enabled
            regs::P0TFD => 0x50,        // ready, no error
            regs::P0CI => self.ci,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, ctx: &mut DevCtx, off: u32, _size: OpSize, val: u32) {
        match off {
            regs::GHC if val & 1 != 0 => {
                // HR: full HBA reset. Aborts any in-flight command
                // (including a wedged one) and clears all state.
                self.resets += 1;
                self.clb = 0;
                self.fb = 0;
                self.is = 0;
                self.p0is = 0;
                self.p0ie = 0;
                self.ci = 0;
                self.inflight = None;
                ctx.lower_irq(self.irq_line);
            }
            regs::IS => self.is &= !val,
            regs::P0CLB => self.clb = (self.clb & !0xffff_ffff) | val as u64,
            regs::P0CLB2 => self.clb = (self.clb & 0xffff_ffff) | (val as u64) << 32,
            regs::P0FB => self.fb = val as u64,
            regs::P0IS => {
                self.p0is &= !val;
                if self.p0is == 0 {
                    ctx.lower_irq(self.irq_line);
                }
            }
            regs::P0IE => self.p0ie = val,
            regs::P0CI => {
                let new = val & !self.ci;
                self.ci |= val;
                for slot in 0..32 {
                    if new & (1 << slot) != 0 {
                        self.issue(ctx, slot);
                    }
                }
            }
            _ => {}
        }
    }

    fn event(&mut self, ctx: &mut DevCtx, _token: u64) {
        let Some(req) = self.inflight.take() else {
            return;
        };
        if ctx.roll_fault(FaultKind::AhciTaskFileError, req.slot as u64) {
            // Media error: the command completes with TFES and no data.
            self.errors += 1;
            self.p0is |= 1 << 30;
            self.ci &= !(1 << req.slot);
            self.is |= 1;
            if self.p0ie != 0 {
                ctx.raise_irq(self.irq_line);
            }
            return;
        }
        // Move the data through the PRDT.
        let total = req.sectors as u64 * SECTOR as u64;
        let mut moved = 0u64;
        let mut lba = req.lba;
        let mut pending: Vec<u8> = Vec::new();
        let mut ok = true;
        for (dba, dbc) in &req.prdt {
            if moved >= total {
                break;
            }
            let chunk = (*dbc as u64).min(total - moved);
            if req.write {
                match ctx.dma_read(*dba, chunk as usize) {
                    Some(d) => pending.extend_from_slice(&d),
                    None => {
                        ok = false;
                        break;
                    }
                }
            } else {
                let mut data = Vec::with_capacity(chunk as usize);
                while (data.len() as u64) < chunk {
                    data.extend_from_slice(&self.sector(lba));
                    lba += 1;
                }
                data.truncate(chunk as usize);
                if !ctx.dma_write(*dba, &data) {
                    ok = false;
                    break;
                }
            }
            moved += chunk;
        }
        if req.write && ok {
            for (i, s) in pending.chunks(SECTOR as usize).enumerate() {
                let mut sec = s.to_vec();
                sec.resize(SECTOR as usize, 0);
                self.store.insert(req.lba + i as u64, sec);
            }
        }

        if ok {
            self.completed += 1;
            self.bytes_moved += moved;
            self.p0is |= 1 << 0; // DHRS: device-to-host register FIS
        } else {
            self.errors += 1;
            self.p0is |= 1 << 30; // TFES
        }
        self.ci &= !(1 << req.slot);
        self.is |= 1;
        if self.p0ie != 0 {
            if ctx.roll_fault(FaultKind::AhciLostIrq, req.slot as u64) {
                // Completion state is all set, but the interrupt is
                // lost — the driver must time out and poll.
            } else {
                ctx.raise_irq(self.irq_line);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;
    use crate::pic;

    const BASE: u64 = 0xfeb0_0000;
    const IRQ: u8 = 11;

    fn setup() -> (DeviceBus, PhysMem, usize) {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(Ahci::new(DiskParams::sata_250g(), IRQ)));
        bus.map_mmio(BASE, 0x1000, dev);
        bus.pic.io_write(pic::MASTER_DATA, 0);
        bus.pic.io_write(pic::SLAVE_DATA, 0);
        (bus, PhysMem::new(16 << 20), dev)
    }

    /// Builds a command in memory and rings the doorbell; returns the
    /// number of MMIO accesses performed (the figure the paper counts).
    fn issue_read(
        bus: &mut DeviceBus,
        mem: &mut PhysMem,
        now: Cycles,
        lba: u64,
        sectors: u32,
        buf: u64,
    ) -> u32 {
        let clb = 0x10_0000u64;
        let ctba = 0x10_1000u64;
        // Command header slot 0: 1 PRDT entry, CTBA.
        mem.write_u32(clb, 1 << 16);
        mem.write_u64(clb + 8, ctba);
        // CFIS: H2D, READ DMA EXT.
        mem.write_u8(ctba, 0x27);
        mem.write_u8(ctba + 2, ATA_READ_DMA_EXT);
        mem.write_u8(ctba + 4, lba as u8);
        mem.write_u8(ctba + 5, (lba >> 8) as u8);
        mem.write_u8(ctba + 6, (lba >> 16) as u8);
        mem.write_u8(ctba + 8, (lba >> 24) as u8);
        mem.write_u8(ctba + 12, sectors as u8);
        mem.write_u8(ctba + 13, (sectors >> 8) as u8);
        // PRDT entry 0.
        mem.write_u64(ctba + 0x80, buf);
        mem.write_u32(ctba + 0x8c, sectors * SECTOR - 1);

        bus.mmio_write(
            mem,
            now,
            BASE + regs::P0CLB as u64,
            OpSize::Dword,
            clb as u32,
        );
        bus.mmio_write(mem, now, BASE + regs::P0IE as u64, OpSize::Dword, 1);
        bus.mmio_write(mem, now, BASE + regs::P0CI as u64, OpSize::Dword, 1);
        1 // the doorbell is the single per-request issue access
    }

    /// The five-access completion sequence the paper's driver performs.
    fn complete(bus: &mut DeviceBus, mem: &mut PhysMem, now: Cycles) -> u32 {
        let is = bus.mmio_read(mem, now, BASE + regs::IS as u64, OpSize::Dword);
        bus.mmio_write(mem, now, BASE + regs::IS as u64, OpSize::Dword, is);
        let p0is = bus.mmio_read(mem, now, BASE + regs::P0IS as u64, OpSize::Dword);
        bus.mmio_write(mem, now, BASE + regs::P0IS as u64, OpSize::Dword, p0is);
        let _ci = bus.mmio_read(mem, now, BASE + regs::P0CI as u64, OpSize::Dword);
        5
    }

    #[test]
    fn read_completes_with_irq_and_data() {
        let (mut bus, mut mem, _) = setup();
        let accesses = issue_read(&mut bus, &mut mem, 0, 100, 8, 0x20_0000);
        assert!(!bus.pic.intr(), "no completion yet");
        let due = bus.next_event_due().expect("completion scheduled");
        bus.process_events(&mut mem, due);
        assert!(bus.pic.intr(), "completion interrupt");
        assert_eq!(bus.pic.ack(), Some(0x28 + 3)); // IRQ 11 via slave
        let accesses = accesses + complete(&mut bus, &mut mem, due);
        assert_eq!(accesses, 6, "six MMIO accesses per request (paper)");
        assert!(!bus.pic.intr(), "line lowered after P0IS clear");

        // Data landed: compare against the device's pattern.
        let expect = Ahci::pattern(100);
        assert_eq!(mem.read_bytes(0x20_0000, 16), expect[..16].to_vec());
        // CI bit cleared.
        assert_eq!(
            bus.mmio_read(&mut mem, due, BASE + regs::P0CI as u64, OpSize::Dword),
            0
        );
    }

    #[test]
    fn latency_scales_with_size() {
        let (mut bus, mut mem, _) = setup();
        issue_read(&mut bus, &mut mem, 0, 0, 1, 0x20_0000);
        let small = bus.next_event_due().unwrap();
        let due = small;
        bus.process_events(&mut mem, due);
        complete(&mut bus, &mut mem, due);

        issue_read(&mut bus, &mut mem, due, 0, 128, 0x20_0000);
        let large = bus.next_event_due().unwrap() - due;
        assert!(
            large > small,
            "128-sector transfer ({large}) slower than 1 ({small})"
        );
        let p = DiskParams::sata_250g();
        assert_eq!(small, p.fixed_latency + p.transfer_cycles(512));
    }

    #[test]
    fn write_then_read_back() {
        let (mut bus, mut mem, _) = setup();
        // Write: put payload in memory, build WRITE command.
        mem.write_bytes(0x30_0000, &[0xabu8; 512]);
        let clb = 0x10_0000u64;
        let ctba = 0x10_1000u64;
        mem.write_u32(clb, 1 << 16);
        mem.write_u64(clb + 8, ctba);
        mem.write_u8(ctba, 0x27);
        mem.write_u8(ctba + 2, ATA_WRITE_DMA_EXT);
        mem.write_u8(ctba + 4, 7); // LBA 7
        mem.write_u8(ctba + 12, 1);
        mem.write_u64(ctba + 0x80, 0x30_0000);
        mem.write_u32(ctba + 0x8c, 511);
        bus.mmio_write(
            &mut mem,
            0,
            BASE + regs::P0CLB as u64,
            OpSize::Dword,
            clb as u32,
        );
        bus.mmio_write(&mut mem, 0, BASE + regs::P0IE as u64, OpSize::Dword, 1);
        bus.mmio_write(&mut mem, 0, BASE + regs::P0CI as u64, OpSize::Dword, 1);
        let due = bus.next_event_due().unwrap();
        bus.process_events(&mut mem, due);
        complete(&mut bus, &mut mem, due);

        // Read LBA 7 back into a different buffer.
        issue_read(&mut bus, &mut mem, due, 7, 1, 0x40_0000);
        let due2 = bus.next_event_due().unwrap();
        bus.process_events(&mut mem, due2);
        assert_eq!(mem.read_bytes(0x40_0000, 512), vec![0xab; 512]);
    }

    #[test]
    fn bad_fis_reports_error() {
        let (mut bus, mut mem, _) = setup();
        let clb = 0x10_0000u64;
        mem.write_u32(clb, 1 << 16);
        mem.write_u64(clb + 8, 0x10_1000);
        // Garbage FIS type.
        mem.write_u8(0x10_1000, 0x99);
        bus.mmio_write(
            &mut mem,
            0,
            BASE + regs::P0CLB as u64,
            OpSize::Dword,
            clb as u32,
        );
        bus.mmio_write(&mut mem, 0, BASE + regs::P0IE as u64, OpSize::Dword, 1);
        bus.mmio_write(&mut mem, 0, BASE + regs::P0CI as u64, OpSize::Dword, 1);
        let p0is = bus.mmio_read(&mut mem, 0, BASE + regs::P0IS as u64, OpSize::Dword);
        assert_ne!(p0is & (1 << 30), 0, "task-file error set");
        assert_eq!(
            bus.mmio_read(&mut mem, 0, BASE + regs::P0CI as u64, OpSize::Dword),
            0,
            "slot freed"
        );
    }

    #[test]
    fn iommu_blocks_unauthorized_dma() {
        let mut bus = DeviceBus::new(Iommu::enabled());
        let dev = bus.add_device(Box::new(Ahci::new(DiskParams::sata_250g(), IRQ)));
        bus.map_mmio(BASE, 0x1000, dev);
        let mut mem = PhysMem::new(16 << 20);
        // No mappings at all: even fetching the command header faults.
        issue_read(&mut bus, &mut mem, 0, 0, 1, 0x20_0000);
        assert!(!bus.iommu.faults.is_empty(), "command fetch blocked");
        // The request errored out instead of completing.
        let p0is = bus.mmio_read(&mut mem, 0, BASE + regs::P0IS as u64, OpSize::Dword);
        assert_ne!(p0is & (1 << 30), 0);
    }
}
