//! The Byzantine-guest error domain: typed rejection reasons for
//! malformed guest input, and the structured kill record a VMM files
//! when it terminates a VM.
//!
//! NOVA's isolation claim (Section 4 of the paper) is that a hostile
//! guest — even one colluding with its per-VM VMM — can harm only
//! itself. Everything a guest controls is therefore treated as an
//! attack surface: paravirtual descriptor rings, vAHCI command
//! headers and PRDTs, guest page tables walked by the vTLB, the
//! instruction bytes fed to the emulator, and hypercall arguments.
//! Validators on each surface return a [`GuestFault`] instead of
//! panicking; the VMM either degrades the single request (a
//! guest-visible error completion) or, for input that leaves the VM
//! unserviceable, escalates to a [`VmKill`] that names the surface
//! and reason machine-readably.
//!
//! This module is in `nova-hw` (the bottom of the stack) so the
//! hardware ABI (`crate::pv`), the hypervisor core (vTLB, hypercall
//! decode) and the VMM (pvdisk/pvnet/vAHCI/emulator) all share one
//! vocabulary. The fuzz harness in `tests/hostile.rs` asserts every
//! kill carries the reason matching the surface it attacked.

/// Which guest-controlled interface an input arrived on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GuestSurface {
    /// Paravirtual disk descriptor ring (`crate::pv` disk layout).
    PvDiskRing = 0,
    /// Paravirtual network ring (`crate::pv` net layout).
    PvNetRing = 1,
    /// vAHCI command list / command table / PRDT.
    Vahci = 2,
    /// Guest page tables walked by the vTLB on shadow-paging fills.
    VtlbWalk = 3,
    /// Instruction bytes decoded by the VMM's emulator.
    Emulator = 4,
    /// Hypercall argument decode.
    Hypercall = 5,
    /// Guest-physical memory accesses (EPT-protected ranges).
    GuestMemory = 6,
    /// Architectural CPU state (e.g. an unrecoverable triple fault).
    CpuState = 7,
}

impl GuestSurface {
    /// All surfaces, in discriminant order.
    pub const ALL: [GuestSurface; 8] = [
        GuestSurface::PvDiskRing,
        GuestSurface::PvNetRing,
        GuestSurface::Vahci,
        GuestSurface::VtlbWalk,
        GuestSurface::Emulator,
        GuestSurface::Hypercall,
        GuestSurface::GuestMemory,
        GuestSurface::CpuState,
    ];

    /// Short name for traces and test assertions.
    pub fn name(self) -> &'static str {
        match self {
            GuestSurface::PvDiskRing => "pv-disk-ring",
            GuestSurface::PvNetRing => "pv-net-ring",
            GuestSurface::Vahci => "vahci",
            GuestSurface::VtlbWalk => "vtlb-walk",
            GuestSurface::Emulator => "emulator",
            GuestSurface::Hypercall => "hypercall",
            GuestSurface::GuestMemory => "guest-memory",
            GuestSurface::CpuState => "cpu-state",
        }
    }
}

/// Why a guest input was rejected. One variant per distinct validator
/// outcome, so rejection counters and kill records stay
/// machine-readable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GuestFault {
    /// A ring/queue index or count exceeds the interface's capacity.
    IndexOutOfRange,
    /// A guest-supplied buffer (base or base+len) falls outside the
    /// VM's RAM, or wraps the address space.
    BufferOutOfRange,
    /// A structure that must be naturally aligned is not.
    Misaligned,
    /// A field holds an operation code the interface does not define.
    BadOpcode,
    /// A length/count field is zero or exceeds the per-request limit.
    BadLength,
    /// A shared-memory structure base (ring, command list, FIS area)
    /// points outside guest RAM.
    BadBase,
    /// The guest re-rang a slot/descriptor that is still outstanding.
    Rerung,
    /// A page-table entry points at an unmapped or out-of-range frame.
    BadTableFrame,
    /// The emulator met bytes it cannot decode.
    UndecodableInstruction,
    /// The guest wrote to a range the host dimension protects
    /// (classified as code injection).
    ProtectedRangeWrite,
    /// The vCPU wedged architecturally (triple fault).
    UnrecoverableCpuState,
    /// Hypercall arguments failed validation.
    BadArgument,
}

impl GuestFault {
    /// Short name for traces and test assertions.
    pub fn name(self) -> &'static str {
        match self {
            GuestFault::IndexOutOfRange => "index-out-of-range",
            GuestFault::BufferOutOfRange => "buffer-out-of-range",
            GuestFault::Misaligned => "misaligned",
            GuestFault::BadOpcode => "bad-opcode",
            GuestFault::BadLength => "bad-length",
            GuestFault::BadBase => "bad-base",
            GuestFault::Rerung => "rerung",
            GuestFault::BadTableFrame => "bad-table-frame",
            GuestFault::UndecodableInstruction => "undecodable-instruction",
            GuestFault::ProtectedRangeWrite => "protected-range-write",
            GuestFault::UnrecoverableCpuState => "unrecoverable-cpu-state",
            GuestFault::BadArgument => "bad-argument",
        }
    }
}

/// A structured VM-kill record: which surface the fatal input arrived
/// on and why it was fatal. Filed by the VMM when containment demands
/// terminating the guest (as opposed to degrading one request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmKill {
    /// The interface the input arrived on.
    pub surface: GuestSurface,
    /// The validator outcome that was fatal.
    pub reason: GuestFault,
}

impl VmKill {
    /// Builds a kill record.
    pub fn new(surface: GuestSurface, reason: GuestFault) -> VmKill {
        VmKill { surface, reason }
    }

    /// The 8-bit exit code forwarded to `PORT_EXIT` when this kill
    /// terminates the VM. Codes `0xfc`/`0xfd`/`0xfe` predate this
    /// module (code injection, triple fault, undecodable instruction)
    /// and are preserved; every other surface gets a stable code in
    /// `0xe0..=0xe7` so supervisors and tests can tell kills apart
    /// without parsing strings.
    pub fn exit_code(self) -> u8 {
        match (self.surface, self.reason) {
            (GuestSurface::GuestMemory, GuestFault::ProtectedRangeWrite) => 0xfc,
            (GuestSurface::CpuState, GuestFault::UnrecoverableCpuState) => 0xfd,
            (GuestSurface::Emulator, GuestFault::UndecodableInstruction) => 0xfe,
            (s, _) => 0xe0 + s as u8,
        }
    }

    /// `true` if `code` is one of the kill exit codes (as opposed to a
    /// voluntary guest exit value).
    pub fn is_kill_code(code: u8) -> bool {
        matches!(code, 0xfc..=0xfe | 0xe0..=0xe7)
    }
}

impl core::fmt::Display for VmKill {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.surface.name(), self.reason.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_exit_codes_preserved() {
        assert_eq!(
            VmKill::new(GuestSurface::GuestMemory, GuestFault::ProtectedRangeWrite).exit_code(),
            0xfc
        );
        assert_eq!(
            VmKill::new(GuestSurface::CpuState, GuestFault::UnrecoverableCpuState).exit_code(),
            0xfd
        );
        assert_eq!(
            VmKill::new(GuestSurface::Emulator, GuestFault::UndecodableInstruction).exit_code(),
            0xfe
        );
    }

    #[test]
    fn kill_codes_are_distinct_per_surface() {
        let mut codes: Vec<u8> = GuestSurface::ALL
            .iter()
            .map(|&s| VmKill::new(s, GuestFault::BadBase).exit_code())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), GuestSurface::ALL.len());
        for &c in &codes {
            assert!(VmKill::is_kill_code(c), "{c:#x}");
        }
        assert!(!VmKill::is_kill_code(0));
        assert!(!VmKill::is_kill_code(0xf4));
    }

    #[test]
    fn display_is_machine_readable() {
        let k = VmKill::new(GuestSurface::PvDiskRing, GuestFault::BufferOutOfRange);
        assert_eq!(k.to_string(), "pv-disk-ring/buffer-out-of-range");
    }
}
