//! Device bus: MMIO/port routing, the device trait, and the context
//! devices use for DMA, interrupts and event scheduling.

use nova_trace::{Kind, Tracer, PD_NONE};
use nova_x86::insn::OpSize;

use crate::event::{Event, EventQueue};
use crate::fault::{FaultInjector, FaultKind};
use crate::iommu::{DmaFault, Iommu};
use crate::mem::PhysMem;
use crate::pic::DualPic;
use crate::{Cycles, PAddr};

/// Out-of-band machine control state writable by devices (the debug
/// exit port and benchmark marks).
#[derive(Default)]
pub struct BusCtl {
    /// Set when the running software requested shutdown (debug-exit
    /// port); carries the exit code.
    pub shutdown: Option<u8>,
    /// Benchmark marks: (cycle, value) pairs written to the mark port.
    pub marks: Vec<(Cycles, u32)>,
}

/// Execution context handed to a device during a register access or
/// event callback.
pub struct DevCtx<'a> {
    /// Physical memory (DMA goes through [`DevCtx::dma_read`] /
    /// [`DevCtx::dma_write`], which enforce the IOMMU).
    pub mem: &'a mut PhysMem,
    /// Platform interrupt controller.
    pub pic: &'a mut DualPic,
    /// Event queue for completion timing.
    pub events: &'a mut EventQueue,
    /// The IOMMU (consulted by the DMA helpers).
    pub iommu: &'a mut Iommu,
    /// Machine control state.
    pub ctl: &'a mut BusCtl,
    /// Fault injector (consulted at device fault sites).
    pub fault: &'a mut FaultInjector,
    /// Event tracer (IRQ, DMA and injected-fault tracepoints).
    pub trace: &'a mut Tracer,
    /// Current cycle.
    pub now: Cycles,
    /// This device's bus index (its IOMMU requester id).
    pub dev: usize,
}

impl DevCtx<'_> {
    /// Schedules an event for this device `delay` cycles from now.
    pub fn schedule(&mut self, delay: Cycles, token: u64) {
        self.events.schedule(
            self.now + delay,
            Event {
                device: self.dev,
                token,
            },
        );
    }

    /// Raises this device's interrupt line — subject to the IOMMU's
    /// interrupt remapping: a device restricted to another vector
    /// cannot assert this one (Section 4.2).
    pub fn raise_irq(&mut self, line: u8) {
        if self.iommu.irq_permitted(self.dev, line) {
            self.trace
                .emit(0, PD_NONE, Kind::IrqRaise, line as u64, self.now);
            self.pic.set_line(line, true);
        }
    }

    /// Lowers this device's interrupt line.
    pub fn lower_irq(&mut self, line: u8) {
        self.pic.set_line(line, false);
    }

    /// Pulses an interrupt line (edge), subject to interrupt
    /// remapping.
    pub fn pulse_irq(&mut self, line: u8) {
        if self.iommu.irq_permitted(self.dev, line) {
            self.trace
                .emit(0, PD_NONE, Kind::IrqRaise, line as u64, self.now);
            self.pic.pulse(line);
        }
    }

    /// Consults the fault plan at a device fault site (see
    /// [`FaultInjector::roll`]), recording injected faults in the
    /// event trace as well.
    pub fn roll_fault(&mut self, kind: FaultKind, detail: u64) -> bool {
        let hit = self.fault.roll(self.now, kind, detail);
        if hit {
            self.trace
                .emit(0, PD_NONE, Kind::FaultInject, kind as u64, self.now);
        }
        hit
    }

    /// DMA write: moves `data` into memory at bus address `addr`,
    /// translated and permission-checked page-by-page by the IOMMU.
    /// Returns `false` (and records a fault) if any page is blocked;
    /// the transfer stops at the first blocked page.
    pub fn dma_write(&mut self, addr: u64, data: &[u8]) -> bool {
        self.trace.emit(0, PD_NONE, Kind::DmaStart, addr, self.now);
        if self.inject_iommu_fault(addr, true) {
            return false;
        }
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let in_page = (4096 - (a & 0xfff)) as usize;
            let chunk = in_page.min(data.len() - off);
            match self.iommu.translate(self.dev, a, true) {
                Some(hpa) => self.mem.write_bytes(hpa, &data[off..off + chunk]),
                None => return false,
            }
            off += chunk;
        }
        self.trace
            .emit(0, PD_NONE, Kind::DmaComplete, data.len() as u64, self.now);
        true
    }

    /// DMA read: copies `len` bytes from bus address `addr`. Returns
    /// `None` on an IOMMU fault.
    pub fn dma_read(&mut self, addr: u64, len: usize) -> Option<Vec<u8>> {
        self.trace.emit(0, PD_NONE, Kind::DmaStart, addr, self.now);
        if self.inject_iommu_fault(addr, false) {
            return None;
        }
        let mut out = vec![0u8; len];
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let in_page = (4096 - (a & 0xfff)) as usize;
            let chunk = in_page.min(len - off);
            let hpa = self.iommu.translate(self.dev, a, false)?;
            self.mem.read_into(hpa, &mut out[off..off + chunk]);
            off += chunk;
        }
        self.trace
            .emit(0, PD_NONE, Kind::DmaComplete, len as u64, self.now);
        Some(out)
    }

    /// Fault site: a DMA transaction blocked as if its IOMMU mapping
    /// were stale. Recorded as an ordinary [`DmaFault`] so the fault
    /// is observable exactly like a real blocked transfer.
    fn inject_iommu_fault(&mut self, addr: u64, write: bool) -> bool {
        if self.roll_fault(FaultKind::IommuFault, addr) {
            self.iommu.faults.push(DmaFault {
                device: self.dev,
                addr,
                write,
            });
            return true;
        }
        false
    }
}

/// A bus device. Default implementations read zero and drop writes, so
/// devices implement only the surfaces they have.
pub trait Device {
    /// Human-readable name (diagnostics).
    fn name(&self) -> &'static str;

    /// Typed access for host-side drivers and tests.
    fn as_any(&mut self) -> &mut dyn std::any::Any;

    /// MMIO read at `off` bytes into the device's window.
    fn mmio_read(&mut self, _ctx: &mut DevCtx, _off: u32, _size: OpSize) -> u32 {
        0
    }

    /// MMIO write.
    fn mmio_write(&mut self, _ctx: &mut DevCtx, _off: u32, _size: OpSize, _val: u32) {}

    /// Port read.
    fn io_read(&mut self, _ctx: &mut DevCtx, _port: u16, _size: OpSize) -> u32 {
        0
    }

    /// Port write.
    fn io_write(&mut self, _ctx: &mut DevCtx, _port: u16, _size: OpSize, _val: u32) {}

    /// A scheduled event fired.
    fn event(&mut self, _ctx: &mut DevCtx, _token: u64) {}
}

struct PortRange {
    first: u16,
    last: u16,
    dev: usize,
}

struct MmioRange {
    base: PAddr,
    size: u64,
    dev: usize,
}

/// The device bus: devices, routing tables, interrupt controller,
/// event queue, IOMMU.
pub struct DeviceBus {
    devices: Vec<Option<Box<dyn Device>>>,
    ports: Vec<PortRange>,
    mmio: Vec<MmioRange>,
    /// Platform interrupt controller.
    pub pic: DualPic,
    /// Device event queue.
    pub events: EventQueue,
    /// DMA remapping unit.
    pub iommu: Iommu,
    /// Machine control state.
    pub ctl: BusCtl,
    /// Platform fault injector (inert unless a plan is attached).
    pub fault: FaultInjector,
    /// Platform tracer (off — zero rings, zero mask — by default).
    pub trace: Tracer,
}

impl DeviceBus {
    /// Creates an empty bus with the given IOMMU.
    pub fn new(iommu: Iommu) -> DeviceBus {
        DeviceBus {
            devices: Vec::new(),
            ports: Vec::new(),
            mmio: Vec::new(),
            pic: DualPic::new(),
            events: EventQueue::new(),
            iommu,
            ctl: BusCtl::default(),
            fault: FaultInjector::disabled(),
            trace: Tracer::off(),
        }
    }

    /// Registers a device, returning its bus index.
    pub fn add_device(&mut self, dev: Box<dyn Device>) -> usize {
        self.devices.push(Some(dev));
        self.devices.len() - 1
    }

    /// Routes port range `first..=last` to device `dev`.
    pub fn map_ports(&mut self, first: u16, last: u16, dev: usize) {
        self.ports.push(PortRange { first, last, dev });
    }

    /// Routes MMIO window `base..base+size` to device `dev`.
    pub fn map_mmio(&mut self, base: PAddr, size: u64, dev: usize) {
        self.mmio.push(MmioRange { base, size, dev });
    }

    /// The device owning `port`, if any.
    pub fn port_owner(&self, port: u16) -> Option<usize> {
        self.ports
            .iter()
            .find(|r| (r.first..=r.last).contains(&port))
            .map(|r| r.dev)
    }

    /// The device owning physical address `addr`, and the offset into
    /// its window.
    pub fn mmio_owner(&self, addr: PAddr) -> Option<(usize, u32)> {
        self.mmio
            .iter()
            .find(|r| addr >= r.base && addr < r.base + r.size)
            .map(|r| (r.dev, (addr - r.base) as u32))
    }

    fn dispatch<R>(
        &mut self,
        mem: &mut PhysMem,
        now: Cycles,
        dev: usize,
        f: impl FnOnce(&mut dyn Device, &mut DevCtx) -> R,
    ) -> Option<R> {
        let mut d = self.devices.get_mut(dev)?.take()?;
        let mut ctx = DevCtx {
            mem,
            pic: &mut self.pic,
            events: &mut self.events,
            iommu: &mut self.iommu,
            ctl: &mut self.ctl,
            fault: &mut self.fault,
            trace: &mut self.trace,
            now,
            dev,
        };
        let r = f(d.as_mut(), &mut ctx);
        self.devices[dev] = Some(d);
        Some(r)
    }

    /// Port read; the PIC is handled inline, unrouted ports read as
    /// `0xFF..` (floating bus).
    pub fn io_read(&mut self, mem: &mut PhysMem, now: Cycles, port: u16, size: OpSize) -> u32 {
        if DualPic::owns_port(port) {
            return self.pic.io_read(port) as u32;
        }
        match self.port_owner(port) {
            Some(dev) => self
                .dispatch(mem, now, dev, |d, ctx| d.io_read(ctx, port, size))
                .unwrap_or(size.mask()),
            None => size.mask(),
        }
    }

    /// Port write.
    pub fn io_write(&mut self, mem: &mut PhysMem, now: Cycles, port: u16, size: OpSize, val: u32) {
        if DualPic::owns_port(port) {
            self.pic.io_write(port, val as u8);
            return;
        }
        if let Some(dev) = self.port_owner(port) {
            self.dispatch(mem, now, dev, |d, ctx| d.io_write(ctx, port, size, val));
        }
    }

    /// MMIO read at a physical address inside a device window.
    pub fn mmio_read(&mut self, mem: &mut PhysMem, now: Cycles, addr: PAddr, size: OpSize) -> u32 {
        match self.mmio_owner(addr) {
            Some((dev, off)) => self
                .dispatch(mem, now, dev, |d, ctx| d.mmio_read(ctx, off, size))
                .unwrap_or(size.mask()),
            None => size.mask(),
        }
    }

    /// MMIO write.
    pub fn mmio_write(
        &mut self,
        mem: &mut PhysMem,
        now: Cycles,
        addr: PAddr,
        size: OpSize,
        val: u32,
    ) {
        if let Some((dev, off)) = self.mmio_owner(addr) {
            self.dispatch(mem, now, dev, |d, ctx| d.mmio_write(ctx, off, size, val));
        }
    }

    /// Fires every event due at or before `now`, each at its own due
    /// time (so periodic devices rescheduling themselves cascade
    /// correctly within one call).
    pub fn process_events(&mut self, mem: &mut PhysMem, now: Cycles) {
        while let Some((due, ev)) = self.events.pop_due(now) {
            self.dispatch(mem, due, ev.device, |d, ctx| d.event(ctx, ev.token));
        }
    }

    /// The due time of the next pending device event.
    pub fn next_event_due(&self) -> Option<Cycles> {
        self.events.next_due()
    }

    /// Direct (typed) access to a registered device, for host-side
    /// drivers and tests. Returns `None` if the index is bad or the
    /// device is mid-dispatch.
    pub fn device_mut(&mut self, dev: usize) -> Option<&mut (dyn Device + '_)> {
        match self.devices.get_mut(dev) {
            Some(Some(d)) => Some(d.as_mut()),
            _ => None,
        }
    }

    /// Downcast access to a device of a concrete type.
    pub fn typed_mut<T: 'static>(&mut self, dev: usize) -> Option<&mut T> {
        match self.devices.get_mut(dev) {
            Some(Some(d)) => d.as_any().downcast_mut::<T>(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loopback test device: remembers writes, schedules an echo
    /// event that raises IRQ 5.
    #[derive(Default)]
    struct Echo {
        last: u32,
        events_seen: Vec<u64>,
    }

    impl Device for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }

        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn mmio_read(&mut self, _ctx: &mut DevCtx, off: u32, _size: OpSize) -> u32 {
            self.last + off
        }

        fn mmio_write(&mut self, ctx: &mut DevCtx, _off: u32, _size: OpSize, val: u32) {
            self.last = val;
            ctx.schedule(100, 7);
        }

        fn io_write(&mut self, ctx: &mut DevCtx, _port: u16, _size: OpSize, val: u32) {
            self.last = val;
            ctx.raise_irq(5);
        }

        fn event(&mut self, ctx: &mut DevCtx, token: u64) {
            self.events_seen.push(token);
            ctx.raise_irq(5);
        }
    }

    fn setup() -> (DeviceBus, PhysMem, usize) {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(Echo::default()));
        bus.map_ports(0x100, 0x107, dev);
        bus.map_mmio(0xfeb0_0000, 0x1000, dev);
        (bus, PhysMem::new(1 << 20), dev)
    }

    #[test]
    fn port_routing() {
        let (mut bus, mut mem, _) = setup();
        bus.io_write(&mut mem, 0, 0x100, OpSize::Dword, 42);
        assert_eq!(bus.mmio_read(&mut mem, 0, 0xfeb0_0004, OpSize::Dword), 46);
        // Unrouted port reads as floating bus.
        assert_eq!(bus.io_read(&mut mem, 0, 0x999, OpSize::Byte), 0xff);
    }

    #[test]
    fn event_scheduling_and_irq() {
        let (mut bus, mut mem, _) = setup();
        bus.pic.io_write(crate::pic::MASTER_DATA, 0); // unmask
        bus.mmio_write(&mut mem, 0, 0xfeb0_0000, OpSize::Dword, 1);
        assert_eq!(bus.next_event_due(), Some(100));
        bus.process_events(&mut mem, 99);
        assert!(!bus.pic.intr(), "not due yet");
        bus.process_events(&mut mem, 100);
        assert!(bus.pic.intr());
        assert_eq!(bus.pic.ack(), Some(0x25));
    }

    #[test]
    fn pic_ports_handled_inline() {
        let (mut bus, mut mem, _) = setup();
        bus.io_write(&mut mem, 0, crate::pic::MASTER_DATA, OpSize::Byte, 0xfe);
        assert_eq!(
            bus.io_read(&mut mem, 0, crate::pic::MASTER_DATA, OpSize::Byte),
            0xfe
        );
    }

    #[test]
    fn dma_respects_iommu() {
        let mut bus = DeviceBus::new(Iommu::enabled());
        struct DmaDev;
        impl Device for DmaDev {
            fn name(&self) -> &'static str {
                "dma"
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn io_write(&mut self, ctx: &mut DevCtx, _p: u16, _s: OpSize, val: u32) {
                let ok = ctx.dma_write(0x4000, &val.to_le_bytes());
                assert_eq!(ok, val == 1, "only the mapped case succeeds");
            }
        }
        let dev = bus.add_device(Box::new(DmaDev));
        bus.map_ports(0x200, 0x200, dev);
        let mut mem = PhysMem::new(1 << 20);

        // Unmapped: blocked.
        bus.io_write(&mut mem, 0, 0x200, OpSize::Dword, 0);
        assert_eq!(bus.iommu.faults.len(), 1);
        assert_eq!(mem.read_u32(0x4000), 0);

        // Mapped: goes through to the *translated* page.
        bus.iommu.map_page(dev, 0x4000, 0x9000, true);
        bus.io_write(&mut mem, 0, 0x200, OpSize::Dword, 1);
        assert_eq!(mem.read_u32(0x9000), 1);
        assert_eq!(mem.read_u32(0x4000), 0, "bus address is not identity");
    }

    #[test]
    fn dma_crosses_page_boundaries() {
        let mut bus = DeviceBus::new(Iommu::enabled());
        struct Span;
        impl Device for Span {
            fn name(&self) -> &'static str {
                "span"
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn event(&mut self, ctx: &mut DevCtx, _t: u64) {
                let data = vec![0xaa; 8192];
                assert!(ctx.dma_write(0x1800, &data));
                let back = ctx.dma_read(0x1800, 8192).unwrap();
                assert_eq!(back, data);
            }
        }
        let dev = bus.add_device(Box::new(Span));
        for p in 0..4 {
            bus.iommu
                .map_page(dev, 0x1000 + p * 0x1000, 0x2_0000 + p * 0x1000, true);
        }
        let mut mem = PhysMem::new(1 << 20);
        bus.events.schedule(
            0,
            Event {
                device: dev,
                token: 0,
            },
        );
        bus.process_events(&mut mem, 0);
        assert_eq!(mem.read_u8(0x2_0800), 0xaa);
        assert_eq!(mem.read_u8(0x2_2800 - 1), 0xaa);
    }
}
