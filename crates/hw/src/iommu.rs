//! IOMMU: DMA remapping between device (bus) addresses and host
//! physical memory.
//!
//! On platforms with an IOMMU, the NOVA microhypervisor restricts every
//! driver's DMA to the memory regions explicitly delegated to it and
//! blocks transfers into hypervisor memory (Section 4.2,
//! "Device-Driver Attacks"). This model enforces exactly that on every
//! simulated DMA transaction: a device with no domain cannot move a
//! byte, and a mapped domain only reaches pages the hypervisor entered.
//!
//! Without an IOMMU (`Iommu::disabled`), DMA is identity-mapped and
//! unrestricted — the configuration in which any DMA-capable driver
//! must be trusted.

use std::collections::{BTreeMap, HashMap};

use crate::PAddr;

/// Page size used for remapping granularity.
const PAGE: u64 = 4096;

/// A blocked DMA transaction, recorded for diagnostics and the
/// security tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaFault {
    /// Device that attempted the transfer.
    pub device: usize,
    /// Bus address that failed to translate.
    pub addr: u64,
    /// `true` if the device was writing to memory.
    pub write: bool,
}

enum Domain {
    /// Identity mapping (trusted device / directly assigned full
    /// memory).
    Passthrough,
    /// Explicit page mappings: bus page -> (host page, writable).
    Mapped(BTreeMap<u64, (PAddr, bool)>),
}

/// A blocked interrupt assertion (vector restriction, Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrqFault {
    /// Device that asserted the line.
    pub device: usize,
    /// The line it tried to raise.
    pub line: u8,
}

/// The IOMMU.
pub struct Iommu {
    enabled: bool,
    domains: HashMap<usize, Domain>,
    /// Interrupt remapping: the single line each restricted device may
    /// assert ("the hypervisor ... restricts the interrupt vectors
    /// available to drivers", Section 4.2). Unrestricted devices pass
    /// through (legacy behaviour).
    irq_allowed: HashMap<usize, u8>,
    /// Blocked transactions.
    pub faults: Vec<DmaFault>,
    /// Blocked interrupt assertions.
    pub irq_faults: Vec<IrqFault>,
}

impl Iommu {
    /// An enabled IOMMU with no domains: all DMA is blocked until the
    /// hypervisor grants mappings.
    pub fn enabled() -> Iommu {
        Iommu {
            enabled: true,
            domains: HashMap::new(),
            irq_allowed: HashMap::new(),
            faults: Vec::new(),
            irq_faults: Vec::new(),
        }
    }

    /// A platform without an IOMMU: all DMA is identity-mapped.
    pub fn disabled() -> Iommu {
        Iommu {
            enabled: false,
            domains: HashMap::new(),
            irq_allowed: HashMap::new(),
            faults: Vec::new(),
            irq_faults: Vec::new(),
        }
    }

    /// `true` if remapping hardware is present.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Grants `device` full identity access (trusted driver).
    pub fn set_passthrough(&mut self, device: usize) {
        self.domains.insert(device, Domain::Passthrough);
    }

    /// Maps one bus page for `device` to a host page.
    pub fn map_page(&mut self, device: usize, bus_page: u64, host_page: PAddr, write: bool) {
        let dom = self
            .domains
            .entry(device)
            .or_insert_with(|| Domain::Mapped(BTreeMap::new()));
        match dom {
            Domain::Mapped(m) => {
                m.insert(bus_page & !(PAGE - 1), (host_page & !(PAGE - 1), write));
            }
            Domain::Passthrough => {
                let mut m = BTreeMap::new();
                m.insert(bus_page & !(PAGE - 1), (host_page & !(PAGE - 1), write));
                *dom = Domain::Mapped(m);
            }
        }
    }

    /// Revokes one bus page from `device`.
    pub fn unmap_page(&mut self, device: usize, bus_page: u64) {
        if let Some(Domain::Mapped(m)) = self.domains.get_mut(&device) {
            m.remove(&(bus_page & !(PAGE - 1)));
        }
    }

    /// Removes the device's entire domain (all further DMA faults).
    pub fn clear_device(&mut self, device: usize) {
        self.domains.remove(&device);
    }

    /// Restricts `device` to asserting exactly `line` (interrupt
    /// remapping).
    pub fn restrict_irq(&mut self, device: usize, line: u8) {
        self.irq_allowed.insert(device, line);
    }

    /// Checks (and on failure records) an interrupt assertion.
    pub fn irq_permitted(&mut self, device: usize, line: u8) -> bool {
        if !self.enabled {
            return true;
        }
        match self.irq_allowed.get(&device) {
            Some(&allowed) if allowed == line => true,
            None => true, // unrestricted legacy device
            Some(_) => {
                self.irq_faults.push(IrqFault { device, line });
                false
            }
        }
    }

    /// Translates one bus address for a DMA transaction, recording a
    /// fault on failure.
    pub fn translate(&mut self, device: usize, addr: u64, write: bool) -> Option<PAddr> {
        if !self.enabled {
            return Some(addr);
        }
        let res = match self.domains.get(&device) {
            Some(Domain::Passthrough) => Some(addr),
            Some(Domain::Mapped(m)) => match m.get(&(addr & !(PAGE - 1))) {
                Some((host, w)) if *w || !write => Some(host + (addr & (PAGE - 1))),
                _ => None,
            },
            None => None,
        };
        if res.is_none() {
            self.faults.push(DmaFault {
                device,
                addr,
                write,
            });
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irq_restriction_blocks_spoofed_vectors() {
        let mut io = Iommu::enabled();
        // Unrestricted device: anything goes (legacy).
        assert!(io.irq_permitted(3, 9));
        // Restricted device: only its wired line.
        io.restrict_irq(1, 11);
        assert!(io.irq_permitted(1, 11));
        assert!(!io.irq_permitted(1, 0), "timer vector spoofing blocked");
        assert!(!io.irq_permitted(1, 1), "keyboard vector spoofing blocked");
        assert_eq!(io.irq_faults.len(), 2);
        assert_eq!(io.irq_faults[0], IrqFault { device: 1, line: 0 });
        // Without an IOMMU there is no enforcement.
        let mut io = Iommu::disabled();
        io.restrict_irq(1, 11);
        assert!(io.irq_permitted(1, 5));
    }

    #[test]
    fn disabled_is_identity() {
        let mut io = Iommu::disabled();
        assert_eq!(io.translate(0, 0x1234, true), Some(0x1234));
        assert!(io.faults.is_empty());
    }

    #[test]
    fn enabled_blocks_unmapped() {
        let mut io = Iommu::enabled();
        assert_eq!(io.translate(2, 0x1000, false), None);
        assert_eq!(io.faults.len(), 1);
        assert_eq!(io.faults[0].device, 2);
    }

    #[test]
    fn mapped_page_translates_with_offset() {
        let mut io = Iommu::enabled();
        io.map_page(1, 0x4000, 0x9000, true);
        assert_eq!(io.translate(1, 0x4123, true), Some(0x9123));
        assert_eq!(io.translate(1, 0x5000, false), None, "next page unmapped");
    }

    #[test]
    fn write_protection_enforced() {
        let mut io = Iommu::enabled();
        io.map_page(1, 0x4000, 0x9000, false);
        assert_eq!(io.translate(1, 0x4000, false), Some(0x9000));
        assert_eq!(io.translate(1, 0x4000, true), None);
    }

    #[test]
    fn unmap_revokes() {
        let mut io = Iommu::enabled();
        io.map_page(1, 0x4000, 0x9000, true);
        io.unmap_page(1, 0x4000);
        assert_eq!(io.translate(1, 0x4000, false), None);
    }

    #[test]
    fn passthrough_device() {
        let mut io = Iommu::enabled();
        io.set_passthrough(7);
        assert_eq!(io.translate(7, 0xdead_b000, true), Some(0xdead_b000));
        io.clear_device(7);
        assert_eq!(io.translate(7, 0xdead_b000, true), None);
    }

    #[test]
    fn domains_are_per_device() {
        let mut io = Iommu::enabled();
        io.map_page(1, 0x4000, 0x9000, true);
        assert_eq!(
            io.translate(2, 0x4000, false),
            None,
            "device 2 has no domain"
        );
    }
}
