//! Memory-management unit: page-table walks.
//!
//! Three walk flavours exist, matching Section 5.3 of the paper:
//!
//! - **Native**: two-level 32-bit walk of the running system's own page
//!   table (`CR3`), used when no hypervisor is interposed and for the
//!   paper's "Native" baselines.
//! - **Nested**: two-dimensional GVA→GPA→HPA translation. The guest's
//!   two-level table is walked, and *every* guest-table access itself
//!   requires a nested EPT/NPT walk, which is exactly why nested TLB
//!   fills are more expensive than native fills (the "Direct" bar of
//!   Figure 5 is 0.6% below native for this reason). Large host pages
//!   shorten the nested dimension; the AMD 2-level NPT format shortens
//!   it further, reproducing the Intel/AMD gap in Figure 5.
//! - **Shadow**: in vTLB mode the hardware walks only the shadow page
//!   table maintained by the microhypervisor. Any miss or permission
//!   violation is reported to the hypervisor (as a #PF VM exit), never
//!   directly to the guest.
//!
//! Accessed/dirty-bit maintenance is omitted *here*: these walkers
//! model the hardware's lookup path only. For shadow paging, the
//! architectural A/D (and user/supervisor) semantics of the *guest*
//! table are maintained in software by the vTLB walker in
//! `nova-core::vtlb`, which sets A on every successful walk, D on
//! writes, and fills writable-but-clean pages read-only so the first
//! guest write faults and dirties the guest entry.

use nova_x86::paging::{pte, Access, NestedFormat, PAGE_SIZE};
use nova_x86::reg::{cr0, cr4, Regs};

use crate::cost::CostModel;
use crate::mem::PhysMem;
use crate::{Cycles, PAddr};

/// The subset of the register file the MMU consults. The CPU's
/// execution environment carries a copy, updated on CR writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmuRegs {
    /// CR0 (PG bit).
    pub cr0: u32,
    /// CR3 (table root).
    pub cr3: u32,
    /// CR4 (PSE bit).
    pub cr4: u32,
}

impl MmuRegs {
    /// Extracts the MMU-relevant registers.
    pub fn from_regs(r: &Regs) -> MmuRegs {
        MmuRegs {
            cr0: r.cr0,
            cr3: r.cr3,
            cr4: r.cr4,
        }
    }

    /// `true` if paging is enabled.
    pub fn paging(&self) -> bool {
        self.cr0 & cr0::PG != 0
    }

    /// `true` if 4 MB pages are enabled.
    pub fn pse(&self) -> bool {
        self.cr4 & cr4::PSE != 0
    }
}

/// A successful translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Leaf {
    /// Host-physical address of the byte.
    pub hpa: PAddr,
    /// Size of the mapping the translation came from.
    pub page_size: u64,
    /// Whether writes are permitted by every level.
    pub write: bool,
}

/// Page-fault details (delivered to whoever owns the walked table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PfInfo {
    /// Faulting linear address.
    pub addr: u32,
    /// The access was a write.
    pub write: bool,
    /// The access was an instruction fetch.
    pub fetch: bool,
    /// A translation existed but denied the access.
    pub present: bool,
}

/// A nested-walk failure: the guest-physical address missed the host
/// page table. Reported to the hypervisor as an EPT violation VM exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NestedViolation {
    /// The guest-physical address that failed to translate.
    pub gpa: u64,
    /// The offending access.
    pub access: Access,
}

/// Failure of a guest-mode translation under nested paging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuestXlate {
    /// The guest's own page table denied the access: deliver #PF *into*
    /// the guest without any VM exit (the nested-paging win).
    GuestFault(PfInfo),
    /// The host dimension is missing a translation: VM exit.
    Nested(NestedViolation),
}

/// Walks a two-level 32-bit page table rooted at `root` for `addr`.
///
/// `pse` enables 4 MB pages via PDE.PS. `cost` accumulates
/// `walk_level` cycles per level referenced.
///
/// # Errors
///
/// [`PfInfo`] describing the architectural page fault.
pub fn walk_2level(
    mem: &PhysMem,
    root: u32,
    addr: u32,
    access: Access,
    pse: bool,
    cost: &CostModel,
    cycles: &mut Cycles,
) -> Result<Leaf, PfInfo> {
    let fault = |present| PfInfo {
        addr,
        write: access.write,
        fetch: access.fetch,
        present,
    };

    let (di, ti, off) = nova_x86::paging::split_2level(addr);

    *cycles += cost.walk_level;
    let pde = mem.read_u32(((root & pte::ADDR) as u64) + di as u64 * 4);
    if pde & pte::P == 0 {
        return Err(fault(false));
    }
    if pse && pde & pte::PS != 0 {
        if access.write && pde & pte::W == 0 {
            return Err(fault(true));
        }
        let base = (pde & pte::ADDR_LARGE) as u64;
        return Ok(Leaf {
            hpa: base + (addr & (nova_x86::paging::LARGE_PAGE_SIZE - 1)) as u64,
            page_size: nova_x86::paging::LARGE_PAGE_SIZE as u64,
            write: pde & pte::W != 0,
        });
    }

    *cycles += cost.walk_level;
    let pt = (pde & pte::ADDR) as u64;
    let pte_v = mem.read_u32(pt + ti as u64 * 4);
    if pte_v & pte::P == 0 {
        return Err(fault(false));
    }
    if access.write && (pte_v & pte::W == 0 || pde & pte::W == 0) {
        return Err(fault(true));
    }
    Ok(Leaf {
        hpa: (pte_v & pte::ADDR) as u64 + off as u64,
        page_size: PAGE_SIZE as u64,
        write: pte_v & pte::W != 0 && pde & pte::W != 0,
    })
}

/// Walks the nested (host) dimension: GPA→HPA through an EPT or NPT
/// table rooted at `root`.
///
/// # Errors
///
/// [`NestedViolation`] when a level is non-present or denies the access.
pub fn walk_nested(
    mem: &PhysMem,
    root: PAddr,
    fmt: NestedFormat,
    gpa: u64,
    access: Access,
    cost: &CostModel,
    cycles: &mut Cycles,
) -> Result<Leaf, NestedViolation> {
    use nova_x86::paging::npte;

    let viol = NestedViolation { gpa, access };
    let mut table = root;
    let mut level = fmt.levels() - 1;

    loop {
        *cycles += cost.walk_level;
        let idx = fmt.index_of(level, gpa);
        // 32-bit NPT entries reuse the classic PTE layout (P/W bits);
        // 64-bit EPT entries use the R/W/X layout.
        let entry = match fmt.entry_size() {
            8 => mem.read_u64(table + idx * 8),
            _ => mem.read_u32(table + idx * 4) as u64,
        };
        let (present, writable, addr_mask, ps) = match fmt {
            NestedFormat::Ept4Level => (
                entry & npte::R != 0,
                entry & npte::W != 0,
                npte::ADDR,
                entry & npte::PS != 0,
            ),
            NestedFormat::Npt2Level => (
                entry & pte::P as u64 != 0,
                entry & pte::W as u64 != 0,
                pte::ADDR as u64,
                entry & pte::PS as u64 != 0,
            ),
        };
        if !present {
            return Err(viol);
        }
        if level == 0 || ps {
            if access.write && !writable {
                return Err(viol);
            }
            let page_size = if level == 0 {
                PAGE_SIZE as u64
            } else {
                1u64 << (12 + level * fmt.index_bits())
            };
            let base = match fmt {
                NestedFormat::Ept4Level => entry & addr_mask & !(page_size - 1),
                NestedFormat::Npt2Level => {
                    if ps {
                        (entry as u32 & pte::ADDR_LARGE) as u64
                    } else {
                        (entry as u32 & pte::ADDR) as u64
                    }
                }
            };
            return Ok(Leaf {
                hpa: base + (gpa & (page_size - 1)),
                page_size,
                write: writable,
            });
        }
        table = match fmt {
            NestedFormat::Ept4Level => entry & addr_mask,
            NestedFormat::Npt2Level => (entry as u32 & pte::ADDR) as u64,
        };
        level -= 1;
    }
}

/// Full guest-mode translation under nested paging: the two-dimensional
/// GVA→GPA→HPA walk. Every guest-table entry read performs its own
/// nested walk (functionally and in cycle cost).
///
/// # Errors
///
/// [`GuestXlate::GuestFault`] for faults the guest kernel must handle;
/// [`GuestXlate::Nested`] for EPT violations the hypervisor must handle.
#[allow(clippy::too_many_arguments)]
pub fn translate_nested_guest(
    mem: &PhysMem,
    regs: &MmuRegs,
    nested_root: PAddr,
    fmt: NestedFormat,
    addr: u32,
    access: Access,
    cost: &CostModel,
    cycles: &mut Cycles,
) -> Result<Leaf, GuestXlate> {
    if !regs.paging() {
        // Guest runs unpaged: GVA == GPA.
        let leaf = walk_nested(mem, nested_root, fmt, addr as u64, access, cost, cycles)
            .map_err(GuestXlate::Nested)?;
        return Ok(leaf);
    }

    let fault = |present| {
        GuestXlate::GuestFault(PfInfo {
            addr,
            write: access.write,
            fetch: access.fetch,
            present,
        })
    };

    let pse = regs.pse();
    let (di, ti, _off) = nova_x86::paging::split_2level(addr);

    // Guest PDE read: translate its GPA through the nested table first.
    let pde_gpa = (regs.cr3 & pte::ADDR) as u64 + di as u64 * 4;
    let pde_hpa = walk_nested(mem, nested_root, fmt, pde_gpa, Access::READ, cost, cycles)
        .map_err(GuestXlate::Nested)?;
    *cycles += cost.mem_access;
    let pde = mem.read_u32(pde_hpa.hpa);
    if pde & pte::P == 0 {
        return Err(fault(false));
    }

    let (gpa, guest_write, guest_page) = if pse && pde & pte::PS != 0 {
        (
            (pde & pte::ADDR_LARGE) as u64
                + (addr & (nova_x86::paging::LARGE_PAGE_SIZE - 1)) as u64,
            pde & pte::W != 0,
            nova_x86::paging::LARGE_PAGE_SIZE as u64,
        )
    } else {
        let pte_gpa = (pde & pte::ADDR) as u64 + ti as u64 * 4;
        let pte_hpa = walk_nested(mem, nested_root, fmt, pte_gpa, Access::READ, cost, cycles)
            .map_err(GuestXlate::Nested)?;
        *cycles += cost.mem_access;
        let pte_v = mem.read_u32(pte_hpa.hpa);
        if pte_v & pte::P == 0 {
            return Err(fault(false));
        }
        (
            (pte_v & pte::ADDR) as u64 + (addr & 0xfff) as u64,
            pte_v & pte::W != 0 && pde & pte::W != 0,
            PAGE_SIZE as u64,
        )
    };

    if access.write && !guest_write {
        return Err(fault(true));
    }

    // Final data translation through the nested dimension.
    let leaf = walk_nested(mem, nested_root, fmt, gpa, access, cost, cycles)
        .map_err(GuestXlate::Nested)?;

    // The effective entry covers the smaller of the two dimensions.
    Ok(Leaf {
        hpa: leaf.hpa,
        page_size: guest_page.min(leaf.page_size),
        write: guest_write && leaf.write,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use nova_x86::paging::npte;

    const C: CostModel = cost::BLM;

    fn mem() -> PhysMem {
        PhysMem::new(16 << 20)
    }

    /// Builds a one-page mapping va -> pa in a fresh 2-level table at
    /// `root`, with a page table at `root + 0x1000`.
    fn map_2level(m: &mut PhysMem, root: u32, va: u32, pa: u32, flags: u32) {
        let (di, ti, _) = nova_x86::paging::split_2level(va);
        let pt = root + 0x1000 + di * 0x1000;
        m.write_u32(root as u64 + di as u64 * 4, pt | pte::P | pte::W);
        m.write_u32(pt as u64 + ti as u64 * 4, (pa & pte::ADDR) | flags);
    }

    #[test]
    fn native_walk_hits() {
        let mut m = mem();
        let root = 0x10_0000;
        map_2level(&mut m, root, 0x40_0000, 0x20_0000, pte::P | pte::W);
        let mut cyc = 0;
        let leaf = walk_2level(&m, root, 0x40_0123, Access::READ, false, &C, &mut cyc).unwrap();
        assert_eq!(leaf.hpa, 0x20_0123);
        assert_eq!(leaf.page_size, 4096);
        assert!(leaf.write);
        assert_eq!(cyc, 2 * C.walk_level, "two levels referenced");
    }

    #[test]
    fn native_walk_not_present() {
        let m = mem();
        let mut cyc = 0;
        let err =
            walk_2level(&m, 0x10_0000, 0x1234, Access::READ, false, &C, &mut cyc).unwrap_err();
        assert!(!err.present);
        assert_eq!(err.addr, 0x1234);
    }

    #[test]
    fn native_walk_write_protect() {
        let mut m = mem();
        let root = 0x10_0000;
        map_2level(&mut m, root, 0x40_0000, 0x20_0000, pte::P); // read-only
        let mut cyc = 0;
        let err = walk_2level(&m, root, 0x40_0000, Access::WRITE, false, &C, &mut cyc).unwrap_err();
        assert!(err.present, "protection fault, not missing");
        assert!(err.write);
        // Reads still fine.
        assert!(walk_2level(&m, root, 0x40_0000, Access::READ, false, &C, &mut cyc).is_ok());
    }

    #[test]
    fn native_large_page() {
        let mut m = mem();
        let root = 0x10_0000;
        // PDE with PS mapping 4 MB at 0x0080_0000.
        let di = 0x40_0000 >> 22;
        m.write_u32(
            root as u64 + di as u64 * 4,
            0x0080_0000 | pte::P | pte::W | pte::PS,
        );
        let mut cyc = 0;
        let leaf = walk_2level(&m, root, 0x40_1234, Access::WRITE, true, &C, &mut cyc).unwrap();
        assert_eq!(leaf.hpa, 0x0080_1234);
        assert_eq!(leaf.page_size, 4 << 20);
        assert_eq!(cyc, C.walk_level, "one level for a large page");
        // Without PSE the PS bit is ignored and the walk descends.
        let mut cyc2 = 0;
        assert!(
            walk_2level(&m, root, 0x40_1234, Access::READ, false, &C, &mut cyc2).is_err(),
            "PS entry treated as table pointer without PSE"
        );
    }

    /// Builds an identity EPT mapping for the first `pages` small pages.
    fn ept_identity(m: &mut PhysMem, root: u64, pages: u64) {
        // 4 levels: L3 at root, then chained tables.
        let l2 = root + 0x1000;
        let l1 = root + 0x2000;
        let l0 = root + 0x3000;
        m.write_u64(root, l2 | npte::RWX);
        m.write_u64(l2, l1 | npte::RWX);
        m.write_u64(l1, l0 | npte::RWX);
        for p in 0..pages {
            m.write_u64(l0 + p * 8, (p << 12) | npte::RWX);
        }
    }

    #[test]
    fn ept_walk_4level() {
        let mut m = mem();
        let root = 0x40_0000;
        ept_identity(&mut m, root, 16);
        let mut cyc = 0;
        let leaf = walk_nested(
            &m,
            root,
            NestedFormat::Ept4Level,
            0x3abc,
            Access::READ,
            &C,
            &mut cyc,
        )
        .unwrap();
        assert_eq!(leaf.hpa, 0x3abc);
        assert_eq!(cyc, 4 * C.walk_level);
        let err = walk_nested(
            &m,
            root,
            NestedFormat::Ept4Level,
            16 << 12,
            Access::READ,
            &C,
            &mut cyc,
        )
        .unwrap_err();
        assert_eq!(err.gpa, 16 << 12);
    }

    #[test]
    fn ept_large_page_short_walk() {
        let mut m = mem();
        let root = 0x40_0000;
        let l2 = root + 0x1000;
        let l1 = root + 0x2000;
        m.write_u64(root, l2 | npte::RWX);
        m.write_u64(l2, l1 | npte::RWX);
        // 2 MB page at L1 level.
        m.write_u64(l1, 0x0060_0000 | npte::RWX | npte::PS);
        let mut cyc = 0;
        let leaf = walk_nested(
            &m,
            root,
            NestedFormat::Ept4Level,
            0x12_3456,
            Access::WRITE,
            &C,
            &mut cyc,
        )
        .unwrap();
        assert_eq!(leaf.page_size, 2 << 20);
        assert_eq!(leaf.hpa, 0x0060_0000 + 0x12_3456);
        assert_eq!(cyc, 3 * C.walk_level, "large page saves one level");
    }

    #[test]
    fn npt_2level_walk() {
        let mut m = mem();
        let root = 0x40_0000u64;
        // 4 MB host page, single level.
        m.write_u32(root, 0x0080_0000 | pte::P | pte::W | pte::PS);
        let mut cyc = 0;
        let leaf = walk_nested(
            &m,
            root,
            NestedFormat::Npt2Level,
            0x12_3456,
            Access::WRITE,
            &C,
            &mut cyc,
        )
        .unwrap();
        assert_eq!(leaf.hpa, 0x0080_0000 + 0x12_3456);
        assert_eq!(leaf.page_size, 4 << 20);
        assert_eq!(cyc, C.walk_level, "single-level AMD host walk");
    }

    #[test]
    fn two_dimensional_walk_costs_more_than_native() {
        let mut m = mem();
        // Guest table at GPA 0x10_0000 mapping GVA 0x40_0000 -> GPA 0x5000.
        let groot = 0x10_0000u32;
        map_2level(&mut m, groot, 0x40_0000, 0x5000, pte::P | pte::W);
        // EPT identity for the first 4 MB.
        let eroot = 0x60_0000u64;
        ept_identity(&mut m, eroot, 1024);

        let regs = MmuRegs {
            cr3: groot,
            cr0: nova_x86::reg::cr0::PG | nova_x86::reg::cr0::PE,
            cr4: 0,
        };

        let mut cyc = 0;
        let leaf = translate_nested_guest(
            &m,
            &regs,
            eroot,
            NestedFormat::Ept4Level,
            0x40_0123,
            Access::READ,
            &C,
            &mut cyc,
        )
        .unwrap();
        assert_eq!(leaf.hpa, 0x5123);

        let mut native_cyc = 0;
        walk_2level(
            &m,
            groot,
            0x40_0123,
            Access::READ,
            false,
            &C,
            &mut native_cyc,
        )
        .unwrap();
        assert!(
            cyc > 2 * native_cyc,
            "2-D walk ({cyc}) must dwarf native ({native_cyc})"
        );
    }

    #[test]
    fn guest_fault_vs_ept_violation() {
        let mut m = mem();
        let groot = 0x10_0000u32;
        map_2level(&mut m, groot, 0x40_0000, 0x5000, pte::P | pte::W);
        let eroot = 0x60_0000u64;
        ept_identity(&mut m, eroot, 1024);

        let regs = MmuRegs {
            cr3: groot,
            cr0: nova_x86::reg::cr0::PG | nova_x86::reg::cr0::PE,
            cr4: 0,
        };

        let mut cyc = 0;
        // Unmapped GVA -> guest's own #PF, no exit.
        match translate_nested_guest(
            &m,
            &regs,
            eroot,
            NestedFormat::Ept4Level,
            0x80_0000,
            Access::READ,
            &C,
            &mut cyc,
        ) {
            Err(GuestXlate::GuestFault(pf)) => assert_eq!(pf.addr, 0x80_0000),
            other => panic!("expected guest fault, got {other:?}"),
        }

        // Guest maps GVA to a GPA beyond the EPT -> violation.
        map_2level(&mut m, groot, 0x44_0000, 0x4000_0000, pte::P | pte::W);
        match translate_nested_guest(
            &m,
            &regs,
            eroot,
            NestedFormat::Ept4Level,
            0x44_0000,
            Access::READ,
            &C,
            &mut cyc,
        ) {
            Err(GuestXlate::Nested(v)) => assert_eq!(v.gpa, 0x4000_0000),
            other => panic!("expected EPT violation, got {other:?}"),
        }
    }

    #[test]
    fn unpaged_guest_gva_equals_gpa() {
        let mut m = mem();
        let eroot = 0x60_0000u64;
        ept_identity(&mut m, eroot, 16);
        let regs = MmuRegs::default(); // paging off
        let mut cyc = 0;
        let leaf = translate_nested_guest(
            &m,
            &regs,
            eroot,
            NestedFormat::Ept4Level,
            0x2345,
            Access::READ,
            &C,
            &mut cyc,
        )
        .unwrap();
        assert_eq!(leaf.hpa, 0x2345);
    }
}
