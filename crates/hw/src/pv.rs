//! Paravirtual batched-I/O device ABI (`nova-pv`).
//!
//! The trap-and-emulate vAHCI model costs ~6 MMIO exits plus an HLT
//! and several PIC EOI port exits for *every* disk request, because
//! the guest drives the device through the same register protocol a
//! physical AHCI controller would demand. This module defines the
//! shared-memory ring protocol that replaces that register dance for
//! guests that opt in (the "virtual" columns of Fig. 6/7): the guest
//! writes request descriptors into a ring page it shares with the
//! VMM, then rings a single *doorbell* register once per **batch**.
//! Completions are written back into the ring by the VMM with no
//! guest exit at all; one coalesced virtual interrupt per drain wakes
//! the guest.
//!
//! This file is pure ABI — register offsets and ring layout shared by
//! the guest driver (`nova-guest`) and the VMM backend (`nova-vmm`).
//! No hardware model lives behind [`PV_BASE`]: accesses always take
//! an MMIO exit to the VMM, which is exactly the point — the protocol
//! is designed so the guest touches the region once per batch, not
//! once per request.
//!
//! # Exit budget
//!
//! Per batch of `n` disk requests: 1 doorbell MMIO exit + 1 HLT +
//! 1 ISR-ack MMIO exit + the PIC EOI port exits, independent of `n`.
//! The guest polls completion state (`used` counter, per-descriptor
//! status) straight from the shared page without exiting.
//!
//! # Interrupt coalescing
//!
//! The backend latches an in-service bit per queue ([`regs::DISK_ISR`]
//! / [`regs::NET_ISR`]). While the bit is set no further interrupt is
//! injected for that queue; completions keep accumulating in the ring.
//! The guest acknowledges by writing 1 to the ISR register
//! (write-1-to-clear) — if more completions arrived meanwhile, the
//! backend immediately re-raises. The guest never needs to *read* the
//! ISR register: the `used` counter in shared memory already says how
//! much work there is.
//!
//! # Counter wraparound
//!
//! The `used`/`errors` counters in the shared pages are the low
//! 32 bits of monotonically increasing 64-bit backend counters.
//! Consumers must therefore never compare them with `<`/`>=`
//! directly: after 2³² completions the ring value wraps to a small
//! number and an ordered compare would conclude no progress (or
//! infinite progress) forever. The correct idiom is the wrapping
//! difference [`fresh`] — `used.wrapping_sub(seen)` — which counts
//! new completions correctly across the wrap as long as fewer than
//! 2³¹ completions happen between observations (guaranteed by the
//! ring capacities, which are < 2⁸). The guest driver's wait loops
//! and the VMM backends both use this idiom; the unit tests below
//! pin it down.
//!
//! # Trust model
//!
//! Everything in the shared pages is **guest-controlled** and may be
//! rewritten, torn, or crafted adversarially at any time. The VMM
//! backends therefore treat each descriptor field as untrusted input:
//! bounds are validated against guest RAM on every read
//! ([`crate::guestfault::GuestFault`] names the rejection reasons),
//! malformed descriptors complete with an error status visible to the
//! guest, and only structurally fatal input (an unusable ring base)
//! escalates to a VM kill. No value read from these pages may ever
//! index hypervisor memory unchecked.

#![deny(clippy::indexing_slicing, clippy::unwrap_used, clippy::panic)]

/// Guest-physical base of the paravirtual device's register page.
///
/// Sits in the same MMIO hole as the vAHCI ([`crate::machine`]
/// `AHCI_BASE`) and virtual NIC windows, inside the guest kernel's
/// identity-mapped device PDE, so no extra guest mappings are needed.
pub const PV_BASE: u64 = 0xfeb2_0000;

/// Size of the register window (one page).
pub const PV_SIZE: u64 = 0x1000;

/// Register offsets within the [`PV_BASE`] page.
pub mod regs {
    /// Read-only feature bitmap ([`super::FEAT_DISK`] |
    /// [`super::FEAT_NET`]); 0 means no PV backend is attached.
    pub const FEAT: u64 = 0x00;
    /// Write: guest-physical address of the disk ring page.
    pub const DISK_RING: u64 = 0x04;
    /// Write: number of descriptors newly published to the disk ring.
    /// This is the one per-batch exit on the submit path.
    pub const DISK_DOORBELL: u64 = 0x08;
    /// Disk completion interrupt status; write 1 to acknowledge
    /// (write-1-to-clear). Re-raises immediately if completions
    /// arrived while the bit was latched.
    pub const DISK_ISR: u64 = 0x0c;
    /// Write: guest-physical address of the net ring (two pages:
    /// shared ring page + backend-private page).
    pub const NET_RING: u64 = 0x10;
    /// Write: number of receive buffers newly posted (ring refill).
    pub const NET_DOORBELL: u64 = 0x14;
    /// Net receive interrupt status; write-1-to-clear.
    pub const NET_ISR: u64 = 0x18;
}

/// [`regs::FEAT`] bit: batched disk queue available.
pub const FEAT_DISK: u32 = 1 << 0;
/// [`regs::FEAT`] bit: paravirtual NIC receive queue available.
pub const FEAT_NET: u32 = 1 << 1;

/// Disk ring layout: one 4 KiB guest-allocated page.
///
/// Producer side (guest): writes descriptors at slots
/// `submitted % CAPACITY`, then rings [`regs::DISK_DOORBELL`]
/// with the count of new descriptors. Consumer side (VMM): processes
/// descriptors in order, writes per-descriptor `status`, then
/// advances the cumulative [`disk::USED`] counter (the status words
/// for a descriptor are valid once `USED` has advanced past it).
pub mod disk {
    /// u32 at +0: cumulative count of completed descriptors
    /// (VMM-written, monotonic). The guest compares against its own
    /// submitted count to find fresh completions — no exit needed.
    pub const USED: u64 = 0;
    /// u32 at +4: cumulative count of descriptors that completed
    /// with an error (VMM-written, monotonic).
    pub const ERRORS: u64 = 4;
    /// First descriptor slot.
    pub const DESC0: u64 = 32;
    /// Descriptor stride in bytes.
    pub const DESC_SIZE: u64 = 32;
    /// Number of descriptor slots in the ring page:
    /// (4096 - 32) / 32 = 127.
    pub const CAPACITY: u32 = 127;

    /// u32: operation, [`OP_READ`] or [`OP_WRITE`].
    pub const D_OP: u64 = 0;
    /// u32: transfer length in 512-byte sectors.
    pub const D_SECTORS: u64 = 4;
    /// u64: starting logical block address.
    pub const D_LBA: u64 = 8;
    /// u64: guest-physical address of the data buffer (any byte
    /// alignment; the transfer may cross page boundaries).
    pub const D_BUF: u64 = 16;
    /// u32: completion status, [`ST_OK`] or [`ST_ERROR`]
    /// (VMM-written).
    pub const D_STATUS: u64 = 24;
    /// u32: low 32 bits of the causal trace context the backend
    /// assigned to this request (VMM-written at completion, purely
    /// observational — the guest driver ignores it; trace tooling
    /// reads it out of ring dumps to join guest-visible completions
    /// to span trees).
    pub const D_CTX: u64 = 28;

    /// [`D_OP`]: read `sectors` from `lba` into `buf`.
    pub const OP_READ: u32 = 1;
    /// [`D_OP`]: write `sectors` from `buf` to `lba`.
    pub const OP_WRITE: u32 = 2;
    /// [`D_STATUS`]: transfer completed successfully.
    pub const ST_OK: u32 = 0;
    /// [`D_STATUS`]: transfer failed (bad parameters or media error).
    pub const ST_ERROR: u32 = 1;
}

/// Net receive ring layout: two guest-allocated pages.
///
/// Page 0 is the shared PV ring; page 1 is private to the backend
/// (it hosts the real e1000e hardware descriptor ring the VMM
/// programs into the physical NIC — the guest never touches it).
///
/// The guest posts receive buffers by filling entries (buffer
/// address + capacity, status 0) and ringing
/// [`regs::NET_DOORBELL`] with the number of new buffers —
/// once per ring *refill*, not per packet. The backend fills each
/// delivered packet into the next posted buffer in order, sets the
/// entry's actual `len` and `status = 1`, and advances [`net::USED`].
pub mod net {
    /// u32 at +0: cumulative count of filled (delivered) entries.
    pub const USED: u64 = 0;
    /// First entry slot.
    pub const ENTRY0: u64 = 32;
    /// Entry stride in bytes.
    pub const ENTRY_SIZE: u64 = 16;
    /// Number of entry slots in the shared page:
    /// (4096 - 32) / 16 = 254.
    pub const CAPACITY: u32 = 254;

    /// u64: guest-physical address of the receive buffer.
    pub const E_BUF: u64 = 0;
    /// u32: on post, buffer capacity; on completion, packet length.
    pub const E_LEN: u64 = 8;
    /// u32: 0 = posted (guest-owned buffer handed to backend),
    /// 1 = filled (packet delivered, guest may consume).
    pub const E_STATUS: u64 = 12;
}

/// Wraparound-safe progress on a cumulative ring counter: how many
/// completions `now` is ahead of `seen`, modulo 2³².
///
/// Both values are the truncated low 32 bits of a monotonic 64-bit
/// counter; the wrapping difference is exact as long as fewer than
/// 2³¹ completions separate the two observations, which the ring
/// capacities guarantee by orders of magnitude.
pub fn fresh(now: u32, seen: u32) -> u32 {
    now.wrapping_sub(seen)
}

/// `true` if `[buf, buf + len)` lies entirely inside a guest RAM of
/// `ram_pages` 4 KiB pages starting at guest-physical 0, without
/// wrapping the 64-bit address space. The shared-ring trust model
/// requires this check on every guest-supplied buffer address before
/// the backend touches it.
pub fn buffer_in_ram(buf: u64, len: u64, ram_pages: u64) -> bool {
    let ram_bytes = ram_pages << 12;
    match buf.checked_add(len) {
        Some(end) => end <= ram_bytes,
        None => false,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn fresh_counts_without_wrap() {
        assert_eq!(fresh(10, 10), 0);
        assert_eq!(fresh(17, 10), 7);
    }

    #[test]
    fn fresh_counts_across_u32_wrap() {
        // 3 completions straddling the 2^32 boundary: seen at
        // 0xffff_fffe, counter now wrapped to 1.
        assert_eq!(fresh(1, 0xffff_fffe), 3);
        // Exactly at the wrap.
        assert_eq!(fresh(0, 0xffff_ffff), 1);
        // An ordered compare would get both of these wrong: the raw
        // u32 compare `1 < 0xffff_fffe` claims no progress forever.
    }

    #[test]
    fn fresh_matches_u64_truncation() {
        // The backend counter is u64; the ring holds its low 32 bits.
        // fresh() over the truncations equals the true u64 delta for
        // deltas < 2^31.
        let cases: [(u64, u64); 4] = [
            (5, 9),
            (0xffff_fff0, 0x1_0000_0010),
            (0x2_ffff_ffff, 0x3_0000_0005),
            (u64::MAX - 2, u64::MAX),
        ];
        for (seen64, now64) in cases {
            let expect = (now64 - seen64) as u32;
            assert_eq!(fresh(now64 as u32, seen64 as u32), expect);
        }
    }

    #[test]
    fn buffer_bounds() {
        let pages = 1024; // 4 MiB guest
        assert!(buffer_in_ram(0, 512, pages));
        assert!(buffer_in_ram((pages << 12) - 512, 512, pages));
        assert!(!buffer_in_ram((pages << 12) - 511, 512, pages));
        assert!(!buffer_in_ram(pages << 12, 1, pages));
        // Address-space wrap must not pass the check.
        assert!(!buffer_in_ram(u64::MAX - 4, 512, pages));
    }
}
