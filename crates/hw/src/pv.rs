//! Paravirtual batched-I/O device ABI (`nova-pv`).
//!
//! The trap-and-emulate vAHCI model costs ~6 MMIO exits plus an HLT
//! and several PIC EOI port exits for *every* disk request, because
//! the guest drives the device through the same register protocol a
//! physical AHCI controller would demand. This module defines the
//! shared-memory ring protocol that replaces that register dance for
//! guests that opt in (the "virtual" columns of Fig. 6/7): the guest
//! writes request descriptors into a ring page it shares with the
//! VMM, then rings a single *doorbell* register once per **batch**.
//! Completions are written back into the ring by the VMM with no
//! guest exit at all; one coalesced virtual interrupt per drain wakes
//! the guest.
//!
//! This file is pure ABI — register offsets and ring layout shared by
//! the guest driver (`nova-guest`) and the VMM backend (`nova-vmm`).
//! No hardware model lives behind [`PV_BASE`]: accesses always take
//! an MMIO exit to the VMM, which is exactly the point — the protocol
//! is designed so the guest touches the region once per batch, not
//! once per request.
//!
//! # Exit budget
//!
//! Per batch of `n` disk requests: 1 doorbell MMIO exit + 1 HLT +
//! 1 ISR-ack MMIO exit + the PIC EOI port exits, independent of `n`.
//! The guest polls completion state (`used` counter, per-descriptor
//! status) straight from the shared page without exiting.
//!
//! # Interrupt coalescing
//!
//! The backend latches an in-service bit per queue ([`regs::DISK_ISR`]
//! / [`regs::NET_ISR`]). While the bit is set no further interrupt is
//! injected for that queue; completions keep accumulating in the ring.
//! The guest acknowledges by writing 1 to the ISR register
//! (write-1-to-clear) — if more completions arrived meanwhile, the
//! backend immediately re-raises. The guest never needs to *read* the
//! ISR register: the `used` counter in shared memory already says how
//! much work there is.

/// Guest-physical base of the paravirtual device's register page.
///
/// Sits in the same MMIO hole as the vAHCI ([`crate::machine`]
/// `AHCI_BASE`) and virtual NIC windows, inside the guest kernel's
/// identity-mapped device PDE, so no extra guest mappings are needed.
pub const PV_BASE: u64 = 0xfeb2_0000;

/// Size of the register window (one page).
pub const PV_SIZE: u64 = 0x1000;

/// Register offsets within the [`PV_BASE`] page.
pub mod regs {
    /// Read-only feature bitmap ([`super::FEAT_DISK`] |
    /// [`super::FEAT_NET`]); 0 means no PV backend is attached.
    pub const FEAT: u64 = 0x00;
    /// Write: guest-physical address of the disk ring page.
    pub const DISK_RING: u64 = 0x04;
    /// Write: number of descriptors newly published to the disk ring.
    /// This is the one per-batch exit on the submit path.
    pub const DISK_DOORBELL: u64 = 0x08;
    /// Disk completion interrupt status; write 1 to acknowledge
    /// (write-1-to-clear). Re-raises immediately if completions
    /// arrived while the bit was latched.
    pub const DISK_ISR: u64 = 0x0c;
    /// Write: guest-physical address of the net ring (two pages:
    /// shared ring page + backend-private page).
    pub const NET_RING: u64 = 0x10;
    /// Write: number of receive buffers newly posted (ring refill).
    pub const NET_DOORBELL: u64 = 0x14;
    /// Net receive interrupt status; write-1-to-clear.
    pub const NET_ISR: u64 = 0x18;
}

/// [`regs::FEAT`] bit: batched disk queue available.
pub const FEAT_DISK: u32 = 1 << 0;
/// [`regs::FEAT`] bit: paravirtual NIC receive queue available.
pub const FEAT_NET: u32 = 1 << 1;

/// Disk ring layout: one 4 KiB guest-allocated page.
///
/// Producer side (guest): writes descriptors at slots
/// `submitted % CAPACITY`, then rings [`regs::DISK_DOORBELL`]
/// with the count of new descriptors. Consumer side (VMM): processes
/// descriptors in order, writes per-descriptor `status`, then
/// advances the cumulative [`disk::USED`] counter (the status words
/// for a descriptor are valid once `USED` has advanced past it).
pub mod disk {
    /// u32 at +0: cumulative count of completed descriptors
    /// (VMM-written, monotonic). The guest compares against its own
    /// submitted count to find fresh completions — no exit needed.
    pub const USED: u64 = 0;
    /// u32 at +4: cumulative count of descriptors that completed
    /// with an error (VMM-written, monotonic).
    pub const ERRORS: u64 = 4;
    /// First descriptor slot.
    pub const DESC0: u64 = 32;
    /// Descriptor stride in bytes.
    pub const DESC_SIZE: u64 = 32;
    /// Number of descriptor slots in the ring page:
    /// (4096 - 32) / 32 = 127.
    pub const CAPACITY: u32 = 127;

    /// u32: operation, [`OP_READ`] or [`OP_WRITE`].
    pub const D_OP: u64 = 0;
    /// u32: transfer length in 512-byte sectors.
    pub const D_SECTORS: u64 = 4;
    /// u64: starting logical block address.
    pub const D_LBA: u64 = 8;
    /// u64: guest-physical address of the data buffer (any byte
    /// alignment; the transfer may cross page boundaries).
    pub const D_BUF: u64 = 16;
    /// u32: completion status, [`ST_OK`] or [`ST_ERROR`]
    /// (VMM-written).
    pub const D_STATUS: u64 = 24;

    /// [`D_OP`]: read `sectors` from `lba` into `buf`.
    pub const OP_READ: u32 = 1;
    /// [`D_OP`]: write `sectors` from `buf` to `lba`.
    pub const OP_WRITE: u32 = 2;
    /// [`D_STATUS`]: transfer completed successfully.
    pub const ST_OK: u32 = 0;
    /// [`D_STATUS`]: transfer failed (bad parameters or media error).
    pub const ST_ERROR: u32 = 1;
}

/// Net receive ring layout: two guest-allocated pages.
///
/// Page 0 is the shared PV ring; page 1 is private to the backend
/// (it hosts the real e1000e hardware descriptor ring the VMM
/// programs into the physical NIC — the guest never touches it).
///
/// The guest posts receive buffers by filling entries (buffer
/// address + capacity, status 0) and ringing
/// [`regs::NET_DOORBELL`] with the number of new buffers —
/// once per ring *refill*, not per packet. The backend fills each
/// delivered packet into the next posted buffer in order, sets the
/// entry's actual `len` and `status = 1`, and advances [`net::USED`].
pub mod net {
    /// u32 at +0: cumulative count of filled (delivered) entries.
    pub const USED: u64 = 0;
    /// First entry slot.
    pub const ENTRY0: u64 = 32;
    /// Entry stride in bytes.
    pub const ENTRY_SIZE: u64 = 16;
    /// Number of entry slots in the shared page:
    /// (4096 - 32) / 16 = 254.
    pub const CAPACITY: u32 = 254;

    /// u64: guest-physical address of the receive buffer.
    pub const E_BUF: u64 = 0;
    /// u32: on post, buffer capacity; on completion, packet length.
    pub const E_LEN: u64 = 8;
    /// u32: 0 = posted (guest-owned buffer handed to backend),
    /// 1 = filled (packet delivered, guest may consume).
    pub const E_STATUS: u64 = 12;
}
