//! i8042 keyboard controller (PS/2): one of the legacy devices the
//! paper's NOVA environment drives (Section 4). Scancodes are injected
//! by the harness (standing in for a human) and drained by the guest
//! or a user-level driver through ports 0x60/0x64 with IRQ 1.

use std::collections::VecDeque;

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};

/// Data port.
pub const DATA: u16 = 0x60;
/// Status/command port.
pub const STATUS: u16 = 0x64;
/// Interrupt line.
pub const IRQ: u8 = 1;

/// Status bit: output buffer full.
pub const STS_OBF: u8 = 1 << 0;

/// The controller.
#[derive(Default)]
pub struct Kbd {
    queue: VecDeque<u8>,
    /// Scancodes consumed by software.
    pub read_count: u64,
}

impl Kbd {
    /// Creates the controller.
    pub fn new() -> Kbd {
        Kbd::default()
    }

    /// Injects a scancode as if a key was pressed; raises IRQ 1.
    /// Call through the bus's typed access, then pulse the line via
    /// [`Kbd::pending`]-driven events or directly.
    pub fn inject(&mut self, scancode: u8) {
        self.queue.push_back(scancode);
    }

    /// `true` while scancodes wait in the output buffer.
    pub fn pending(&self) -> bool {
        !self.queue.is_empty()
    }
}

impl Device for Kbd {
    fn name(&self) -> &'static str {
        "i8042"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn io_read(&mut self, ctx: &mut DevCtx, port: u16, _size: OpSize) -> u32 {
        match port {
            DATA => {
                let b = self.queue.pop_front().unwrap_or(0);
                self.read_count += 1;
                if self.queue.is_empty() {
                    ctx.lower_irq(IRQ);
                } else {
                    ctx.pulse_irq(IRQ);
                }
                b as u32
            }
            STATUS => {
                if self.pending() {
                    STS_OBF as u32
                } else {
                    0
                }
            }
            _ => 0xff,
        }
    }

    fn event(&mut self, ctx: &mut DevCtx, _token: u64) {
        // Injection kick: assert the line while data waits.
        if self.pending() {
            ctx.pulse_irq(IRQ);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;

    #[test]
    fn scancodes_drain_in_order_with_irq() {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(Kbd::new()));
        bus.map_ports(DATA, STATUS, dev);
        bus.pic.io_write(crate::pic::MASTER_DATA, 0);
        let mut mem = PhysMem::new(16);

        bus.typed_mut::<Kbd>(dev).unwrap().inject(0x1e); // 'a'
        bus.typed_mut::<Kbd>(dev).unwrap().inject(0x30); // 'b'
        bus.events.schedule(
            0,
            crate::event::Event {
                device: dev,
                token: 0,
            },
        );
        bus.process_events(&mut mem, 0);
        assert!(bus.pic.intr());
        assert_eq!(bus.pic.ack(), Some(0x21), "IRQ 1");

        assert_eq!(
            bus.io_read(&mut mem, 0, STATUS, OpSize::Byte),
            STS_OBF as u32
        );
        assert_eq!(bus.io_read(&mut mem, 0, DATA, OpSize::Byte), 0x1e);
        assert_eq!(bus.io_read(&mut mem, 0, DATA, OpSize::Byte), 0x30);
        assert_eq!(bus.io_read(&mut mem, 0, STATUS, OpSize::Byte), 0);
        assert_eq!(
            bus.io_read(&mut mem, 0, DATA, OpSize::Byte),
            0,
            "empty reads 0"
        );
    }
}
