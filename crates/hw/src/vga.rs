//! VGA text-mode buffer (80×25 cells at physical 0xB8000).
//!
//! The paper notes that the frame buffer "can be mapped directly into
//! the virtual machine" — device registers without read side effects
//! need no interception. The machine maps this window either directly
//! (native / direct assignment) or through the VMM's device model.

use nova_x86::insn::OpSize;

use crate::device::{DevCtx, Device};
use crate::PAddr;

/// Physical base of the text buffer.
pub const VGA_BASE: PAddr = 0xb8000;
/// Columns.
pub const COLS: usize = 80;
/// Rows.
pub const ROWS: usize = 25;

/// The text buffer: one u16 per cell (character | attribute << 8).
pub struct VgaText {
    cells: Vec<u16>,
}

impl Default for VgaText {
    fn default() -> Self {
        Self::new()
    }
}

impl VgaText {
    /// Creates a cleared screen.
    pub fn new() -> VgaText {
        VgaText {
            cells: vec![0x0720; COLS * ROWS], // space on grey
        }
    }

    /// Renders one row as a trimmed string.
    pub fn row_text(&self, row: usize) -> String {
        let start = row * COLS;
        let s: String = self.cells[start..start + COLS]
            .iter()
            .map(|c| {
                let ch = (c & 0xff) as u8;
                if ch.is_ascii_graphic() || ch == b' ' {
                    ch as char
                } else {
                    '.'
                }
            })
            .collect();
        s.trim_end().to_string()
    }

    /// Renders the whole screen, trailing-blank rows dropped.
    pub fn screen_text(&self) -> String {
        let mut rows: Vec<String> = (0..ROWS).map(|r| self.row_text(r)).collect();
        while rows.last().is_some_and(|r| r.is_empty()) {
            rows.pop();
        }
        rows.join("\n")
    }
}

impl Device for VgaText {
    fn name(&self) -> &'static str {
        "vga-text"
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn mmio_read(&mut self, _ctx: &mut DevCtx, off: u32, size: OpSize) -> u32 {
        let cell = (off / 2) as usize;
        if cell >= self.cells.len() {
            return 0;
        }
        let lo = self.cells[cell];
        match size {
            OpSize::Byte => {
                if off.is_multiple_of(2) {
                    (lo & 0xff) as u32
                } else {
                    (lo >> 8) as u32
                }
            }
            OpSize::Dword => {
                let hi = self.cells.get(cell + 1).copied().unwrap_or(0);
                lo as u32 | (hi as u32) << 16
            }
        }
    }

    fn mmio_write(&mut self, _ctx: &mut DevCtx, off: u32, size: OpSize, val: u32) {
        let cell = (off / 2) as usize;
        if cell >= self.cells.len() {
            return;
        }
        match size {
            OpSize::Byte => {
                let c = &mut self.cells[cell];
                if off.is_multiple_of(2) {
                    *c = (*c & 0xff00) | (val as u16 & 0xff);
                } else {
                    *c = (*c & 0x00ff) | ((val as u16 & 0xff) << 8);
                }
            }
            OpSize::Dword => {
                self.cells[cell] = val as u16;
                if let Some(next) = self.cells.get_mut(cell + 1) {
                    *next = (val >> 16) as u16;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBus;
    use crate::iommu::Iommu;
    use crate::mem::PhysMem;

    #[test]
    fn writes_render_as_text() {
        let mut bus = DeviceBus::new(Iommu::disabled());
        let dev = bus.add_device(Box::new(VgaText::new()));
        bus.map_mmio(VGA_BASE, (COLS * ROWS * 2) as u64, dev);
        let mut mem = PhysMem::new(16);
        for (i, b) in b"NOVA".iter().enumerate() {
            bus.mmio_write(
                &mut mem,
                0,
                VGA_BASE + i as u64 * 2,
                OpSize::Byte,
                *b as u32,
            );
        }
        let d = bus.device_mut(dev).unwrap();
        // Downcast via render check: read back through MMIO instead.
        let _ = d;
        assert_eq!(
            bus.mmio_read(&mut mem, 0, VGA_BASE, OpSize::Byte),
            b'N' as u32
        );
        assert_eq!(
            bus.mmio_read(&mut mem, 0, VGA_BASE + 6, OpSize::Byte),
            b'A' as u32
        );
    }

    #[test]
    fn row_and_screen_text() {
        let mut v = VgaText::new();
        for (i, b) in b"hello".iter().enumerate() {
            v.cells[i] = 0x0700 | *b as u16;
        }
        for (i, b) in b"world".iter().enumerate() {
            v.cells[COLS + i] = 0x0700 | *b as u16;
        }
        assert_eq!(v.row_text(0), "hello");
        assert_eq!(v.screen_text(), "hello\nworld");
    }

    #[test]
    fn dword_write_spans_cells() {
        let mut v = VgaText::new();
        let mut bus = DeviceBus::new(Iommu::disabled());
        let mut mem = PhysMem::new(16);
        let mut ctx_fields = (&mut mem,);
        let _ = &mut ctx_fields;
        // Use the Device trait directly.
        let mut dummy_bus_ctx = crate::device::DevCtx {
            mem: ctx_fields.0,
            pic: &mut bus.pic,
            events: &mut bus.events,
            iommu: &mut bus.iommu,
            ctl: &mut bus.ctl,
            fault: &mut bus.fault,
            trace: &mut bus.trace,
            now: 0,
            dev: 0,
        };
        v.mmio_write(&mut dummy_bus_ctx, 0, OpSize::Dword, 0x0042_0041); // "A" "B"
        assert_eq!(v.row_text(0), "AB");
    }
}
