//! The CPU core: a cycle-accounting interpreter for the x86 subset,
//! with native execution and VT-x-style guest execution.
//!
//! In **native** mode the core runs an operating system directly:
//! paging through its own CR3, devices reached by port I/O and MMIO,
//! interrupts delivered through its IDT. This is the paper's "Native"
//! baseline.
//!
//! In **guest** mode the core runs under a [`Vmcs`]: sensitive
//! instructions and configured events produce [`ExitReason`]s instead
//! of executing, memory traverses the nested or shadow dimension, and
//! the TLB is tagged with the VPID (or flushed on every transition when
//! tagging is disabled — the "w/o VPID" configuration of Figure 5).

use std::collections::HashMap;

use nova_x86::decode::{decode, DecodeError, MAX_INSN_LEN};
use nova_x86::exec::{deliver_event, execute, Env, Exec, Fault};
use nova_x86::insn::{Insn, Op, OpSize, Operand};
use nova_x86::paging::Access;
use nova_x86::reg::{Reg, Regs};

use crate::cost::CostModel;
use crate::device::DeviceBus;
use crate::mem::PhysMem;
use crate::mmu::{self, GuestXlate, MmuRegs};
use crate::tlb::{Tlb, TlbEntry};
use crate::vmx::{ExitReason, PagingVirt, Vmcs};
use crate::{Cycles, PAddr};

/// Cycles charged for a device-register (MMIO or port) access — the
/// uncached bus round trip.
pub const DEVICE_ACCESS_CYCLES: Cycles = 120;

/// Cycles charged for hardware interrupt delivery through the IDT.
pub const IRQ_DELIVERY_CYCLES: Cycles = 80;

/// Why native execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeStop {
    /// Software wrote the debug-exit port; carries the exit code.
    Shutdown(u8),
    /// Unrecoverable fault during exception delivery.
    TripleFault,
    /// Halted with no pending events: the system would idle forever.
    IdleForever,
    /// The cycle budget given to `run_native` was exhausted.
    Budget,
}

/// One CPU core's microarchitectural state.
pub struct Cpu {
    /// Core number.
    pub id: usize,
    /// Native-mode register file.
    pub regs: Regs,
    /// Native-mode halted flag.
    pub halted: bool,
    /// Native-mode STI interrupt shadow.
    pub sti_shadow: bool,
    /// The TLB (shared between native and guest contexts via tags).
    pub tlb: Tlb,
    /// Retired instruction count.
    pub instret: u64,
    /// Cycles spent idle (halted waiting for events).
    pub idle_cycles: Cycles,
    icache: HashMap<PAddr, Insn>,
}

impl Cpu {
    /// Creates core `id` in reset state.
    pub fn new(id: usize) -> Cpu {
        Cpu {
            id,
            regs: Regs::default(),
            halted: false,
            sti_shadow: false,
            tlb: Tlb::new(),
            instret: 0,
            idle_cycles: 0,
            icache: HashMap::new(),
        }
    }

    /// Drops all cached decoded instructions (call after loading a new
    /// program image over old code).
    pub fn flush_icache(&mut self) {
        self.icache.clear();
    }
}

/// Error channel of the CPU's execution environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CpuErr {
    /// Architectural fault to deliver to the running system.
    Fault(Fault),
    /// VM exit (guest mode only).
    Exit(ExitReason),
}

impl From<Fault> for CpuErr {
    fn from(f: Fault) -> CpuErr {
        CpuErr::Fault(f)
    }
}

/// Guest-mode translation/intercept context (copies of VMCS fields that
/// the per-instruction environment needs).
#[derive(Clone, Copy)]
struct GuestCtx {
    vpid: u16,
    paging: PagingVirt,
    intercept_pf: bool,
    tsc_offset: u64,
}

/// The execution environment wired to the machine.
struct CpuEnv<'a> {
    tlb: &'a mut Tlb,
    mem: &'a mut PhysMem,
    bus: &'a mut DeviceBus,
    cost: &'a CostModel,
    clock: &'a mut Cycles,
    mmu: MmuRegs,
    guest: Option<GuestCtx>,
}

impl CpuEnv<'_> {
    fn vpid(&self) -> u16 {
        self.guest.map_or(0, |g| g.vpid)
    }

    /// Translates a linear address, consulting the TLB first.
    fn translate(&mut self, addr: u32, access: Access) -> Result<PAddr, CpuErr> {
        let vpid = self.vpid();

        // Unpaged native mode has no translation (and no TLB traffic).
        if self.guest.is_none() && !self.mmu.paging() {
            return Ok(addr as u64);
        }

        if let Some(e) = self.tlb.lookup_for(vpid, addr as u64, access.fetch) {
            if !access.write || e.write {
                return Ok(e.hpa + (addr as u64 & (e.page_size - 1)));
            }
            // Write to a read-only entry: fall through to the walk,
            // which classifies the fault.
        }
        // TLB miss: attribute the fill walk to the VPID in the metrics
        // registry (free when tracing is off; replaces the old
        // `tlb-debug` stderr scaffolding and its process-global
        // counter).
        if self.bus.trace.active() {
            self.bus
                .trace
                .metrics
                .add(nova_trace::names::TLB_FILLS, vpid as u64, 1);
        }

        let leaf = match self.guest {
            None => mmu::walk_2level(
                self.mem,
                self.mmu.cr3,
                addr,
                access,
                self.mmu.pse(),
                self.cost,
                self.clock,
            )
            .map_err(|pf| {
                CpuErr::Fault(Fault::Page {
                    addr: pf.addr,
                    write: pf.write,
                    fetch: pf.fetch,
                    present: pf.present,
                })
            })?,
            Some(g) => match g.paging {
                PagingVirt::Nested { root, fmt } => mmu::translate_nested_guest(
                    self.mem, &self.mmu, root, fmt, addr, access, self.cost, self.clock,
                )
                .map_err(|e| match e {
                    GuestXlate::GuestFault(pf) => CpuErr::Fault(Fault::Page {
                        addr: pf.addr,
                        write: pf.write,
                        fetch: pf.fetch,
                        present: pf.present,
                    }),
                    GuestXlate::Nested(v) => CpuErr::Exit(ExitReason::EptViolation {
                        gpa: v.gpa,
                        access: v.access,
                    }),
                })?,
                PagingVirt::Shadow { root } => mmu::walk_2level(
                    self.mem,
                    root as u32,
                    addr,
                    access,
                    false,
                    self.cost,
                    self.clock,
                )
                .map_err(|pf| {
                    let fault = Fault::Page {
                        addr: pf.addr,
                        write: pf.write,
                        fetch: pf.fetch,
                        present: pf.present,
                    };
                    if g.intercept_pf {
                        CpuErr::Exit(ExitReason::PageFault {
                            addr: pf.addr,
                            err: fault.error_code().unwrap_or(0),
                        })
                    } else {
                        CpuErr::Fault(fault)
                    }
                })?,
            },
        };

        self.tlb.insert_for(
            TlbEntry {
                vpid,
                vpn: addr as u64 / leaf.page_size,
                hpa: leaf.hpa & !(leaf.page_size - 1),
                page_size: leaf.page_size,
                write: leaf.write,
            },
            access.fetch,
        );
        Ok(leaf.hpa)
    }
}

impl Env for CpuEnv<'_> {
    type Err = CpuErr;

    fn read_mem(&mut self, addr: u32, size: OpSize) -> Result<u32, CpuErr> {
        let hpa = self.translate(addr, Access::READ)?;
        *self.clock += self.cost.mem_access;
        if self.bus.mmio_owner(hpa).is_some() {
            *self.clock += DEVICE_ACCESS_CYCLES;
            return Ok(self.bus.mmio_read(self.mem, *self.clock, hpa, size));
        }
        Ok(self.mem.read_sized(hpa, size))
    }

    fn write_mem(&mut self, addr: u32, size: OpSize, val: u32) -> Result<(), CpuErr> {
        let hpa = self.translate(addr, Access::WRITE)?;
        *self.clock += self.cost.mem_access;
        if self.bus.mmio_owner(hpa).is_some() {
            *self.clock += DEVICE_ACCESS_CYCLES;
            self.bus.mmio_write(self.mem, *self.clock, hpa, size, val);
            return Ok(());
        }
        self.mem.write_sized(hpa, size, val);
        Ok(())
    }

    fn io_in(&mut self, port: u16, size: OpSize) -> Result<u32, CpuErr> {
        *self.clock += DEVICE_ACCESS_CYCLES;
        Ok(self.bus.io_read(self.mem, *self.clock, port, size))
    }

    fn io_out(&mut self, port: u16, size: OpSize, val: u32) -> Result<(), CpuErr> {
        *self.clock += DEVICE_ACCESS_CYCLES;
        self.bus.io_write(self.mem, *self.clock, port, size, val);
        Ok(())
    }

    fn cpuid(&mut self, leaf: u32) -> [u32; 4] {
        self.cost.ident.cpuid(leaf)
    }

    fn rdtsc(&mut self) -> u64 {
        *self.clock + self.guest.map_or(0, |g| g.tsc_offset)
    }

    fn write_cr(&mut self, regs: &mut Regs, n: u8, val: u32) -> Result<(), CpuErr> {
        regs.set_cr(n, val);
        self.mmu = MmuRegs::from_regs(regs);
        if n == 3 || n == 0 || n == 4 {
            // Address-space switch: drop this context's translations.
            self.tlb.flush_vpid(self.vpid());
        }
        Ok(())
    }

    fn invlpg(&mut self, addr: u32) -> Result<(), CpuErr> {
        self.tlb.invalidate(self.vpid(), addr as u64);
        Ok(())
    }
}

/// Fetches and decodes the instruction at `regs.eip`, using the decoded
/// instruction cache.
fn fetch(env: &mut CpuEnv, icache: &mut HashMap<PAddr, Insn>, eip: u32) -> Result<Insn, CpuErr> {
    let hpa = env.translate(eip, Access::FETCH)?;
    if let Some(i) = icache.get(&hpa) {
        return Ok(*i);
    }
    let in_page = (4096 - (eip as usize & 0xfff)).min(MAX_INSN_LEN);
    let mut bytes = env.mem.read_bytes(hpa, in_page);
    let insn = match decode(&bytes) {
        Ok(i) => i,
        Err(DecodeError::Truncated) => {
            // Instruction straddles a page: translate the next page too.
            let next = (eip & !0xfff).wrapping_add(0x1000);
            let hpa2 = env.translate(next, Access::FETCH)?;
            let more = env.mem.read_bytes(hpa2, MAX_INSN_LEN - in_page);
            bytes.extend_from_slice(&more);
            decode(&bytes).map_err(|_| CpuErr::Fault(Fault::InvalidOpcode))?
        }
        Err(DecodeError::InvalidOpcode) => return Err(CpuErr::Fault(Fault::InvalidOpcode)),
    };
    icache.insert(hpa, insn);
    Ok(insn)
}

/// Outcome of delivering an event into the running context.
enum Delivery {
    /// Delivered; execution continues at the handler.
    Done,
    /// The delivery itself faulted on a missing translation that the
    /// hypervisor must service (shadow-paging fills): registers are
    /// restored and the event must be retried after the exit.
    Exit(ExitReason),
    /// Unrecoverable double fault during delivery.
    Fatal,
}

/// Delivers an exception or interrupt. On failure the register state
/// is rolled back so the event can be re-delivered after the
/// hypervisor services the exit (vTLB fill on the stack or IDT page).
fn deliver(regs: &mut Regs, env: &mut CpuEnv, vector: u8, err: Option<u32>) -> Delivery {
    let saved = regs.clone();
    match deliver_event(regs, env, vector, err) {
        Ok(()) => Delivery::Done,
        Err(CpuErr::Exit(reason)) => {
            *regs = saved;
            Delivery::Exit(reason)
        }
        Err(CpuErr::Fault(_)) => {
            *regs = saved;
            Delivery::Fatal
        }
    }
}

/// Checks whether a sensitive instruction must exit under the given
/// VMCS, returning the exit reason.
fn intercept(insn: &Insn, regs: &Regs, vmcs: &Vmcs) -> Option<ExitReason> {
    let len = insn.len;
    match insn.op {
        Op::Cpuid => Some(ExitReason::Cpuid { len }),
        Op::Vmcall => Some(ExitReason::Vmcall { len }),
        Op::Hlt if vmcs.intercept_hlt => Some(ExitReason::Hlt { len }),
        Op::Rdtsc if vmcs.intercept_rdtsc => Some(ExitReason::Rdtsc { len }),
        Op::MovToCr | Op::MovFromCr if vmcs.intercept_cr => {
            let (cr, write, gpr) = match (insn.op, insn.dst, insn.src) {
                (Op::MovToCr, Operand::Cr(c), Operand::Reg(r)) => (c, true, r),
                (Op::MovFromCr, Operand::Reg(r), Operand::Cr(c)) => (c, false, r),
                _ => (0, false, Reg::Eax),
            };
            Some(ExitReason::MovCr {
                cr,
                write,
                gpr,
                len,
            })
        }
        Op::Invlpg if vmcs.intercept_cr => {
            let addr = match insn.dst {
                Operand::Mem(m) => nova_x86::exec::effective_address(&m, regs),
                _ => 0,
            };
            Some(ExitReason::Invlpg { addr, len })
        }
        Op::In | Op::Out => {
            let port_op = if insn.op == Op::In {
                insn.src
            } else {
                insn.dst
            };
            let port = match port_op {
                Operand::Imm(p) => p as u16,
                Operand::Reg(Reg::Edx) => regs.get(Reg::Edx) as u16,
                _ => 0,
            };
            if vmcs.io_intercepted(port) {
                Some(ExitReason::IoPort {
                    port,
                    size: insn.size,
                    write: insn.op == Op::Out,
                    len,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Runs the core natively until shutdown, triple fault, idle deadlock,
/// or the optional cycle budget elapses.
pub fn run_native(
    cpu: &mut Cpu,
    mem: &mut PhysMem,
    bus: &mut DeviceBus,
    cost: &CostModel,
    clock: &mut Cycles,
    budget: Option<Cycles>,
) -> NativeStop {
    let deadline = budget.map(|b| *clock + b);
    loop {
        // Device events and shutdown.
        if bus.next_event_due().is_some_and(|d| d <= *clock) {
            bus.process_events(mem, *clock);
        }
        if let Some(code) = bus.ctl.shutdown.take() {
            return NativeStop::Shutdown(code);
        }
        if deadline.is_some_and(|d| *clock >= d) {
            return NativeStop::Budget;
        }

        // Interrupts.
        let shadow_was = cpu.sti_shadow;
        cpu.sti_shadow = false;
        if !shadow_was && cpu.regs.if_set() && bus.pic.intr() {
            if let Some(vec) = bus.pic.ack() {
                cpu.halted = false;
                *clock += IRQ_DELIVERY_CYCLES;
                let mut env = CpuEnv {
                    tlb: &mut cpu.tlb,
                    mem,
                    bus,
                    cost,
                    clock,
                    mmu: MmuRegs::from_regs(&cpu.regs),
                    guest: None,
                };
                match deliver(&mut cpu.regs, &mut env, vec, None) {
                    Delivery::Done => {}
                    _ => return NativeStop::TripleFault,
                }
            }
        }

        // Halted: fast-forward to the next event.
        if cpu.halted {
            match bus.next_event_due() {
                Some(due) => {
                    let skip = due.saturating_sub(*clock);
                    cpu.idle_cycles += skip;
                    *clock = due;
                    continue;
                }
                None => return NativeStop::IdleForever,
            }
        }

        // Fetch, decode, execute.
        let mut env = CpuEnv {
            tlb: &mut cpu.tlb,
            mem,
            bus,
            cost,
            clock,
            mmu: MmuRegs::from_regs(&cpu.regs),
            guest: None,
        };
        let step = fetch(&mut env, &mut cpu.icache, cpu.regs.eip)
            .and_then(|insn| execute(&insn, &mut cpu.regs, &mut env));
        *clock += 1;
        cpu.instret += 1;

        match step {
            Ok(Exec::Normal) | Ok(Exec::RepContinue) => {}
            Ok(Exec::Halt) => cpu.halted = true,
            Ok(Exec::StiShadow) => cpu.sti_shadow = true,
            Err(CpuErr::Fault(f)) => {
                if let Fault::Page { addr, .. } = f {
                    cpu.regs.cr2 = addr;
                }
                let mut env = CpuEnv {
                    tlb: &mut cpu.tlb,
                    mem,
                    bus,
                    cost,
                    clock,
                    mmu: MmuRegs::from_regs(&cpu.regs),
                    guest: None,
                };
                match deliver(&mut cpu.regs, &mut env, f.vector(), f.error_code()) {
                    Delivery::Done => {}
                    _ => return NativeStop::TripleFault,
                }
            }
            Err(CpuErr::Exit(_)) => unreachable!("no VM exits in native mode"),
        }
    }
}

/// Enters the guest described by `vmcs` and runs until a VM exit.
///
/// Guest register state lives in `vmcs.guest`. The hardware-side
/// effects of entry/exit are modeled here (injection, STI shadow,
/// untagged TLB flushes); the *cycle cost* of the transition is charged
/// by the hypervisor, which knows the tagging configuration
/// (Section 8.5 splits these costs the same way).
pub fn run_guest(
    cpu: &mut Cpu,
    mem: &mut PhysMem,
    bus: &mut DeviceBus,
    cost: &CostModel,
    clock: &mut Cycles,
    vmcs: &mut Vmcs,
    quantum: Option<Cycles>,
) -> ExitReason {
    // Untagged TLB: entry flushes everything.
    if vmcs.vpid == 0 {
        cpu.tlb.flush_all();
    }

    let guest_ctx = GuestCtx {
        vpid: vmcs.vpid,
        paging: vmcs.paging,
        intercept_pf: vmcs.intercept_pf,
        tsc_offset: vmcs.tsc_offset,
    };

    // Event injection on entry.
    if let Some(inj) = vmcs.injection.take() {
        vmcs.halted = false;
        let mut env = CpuEnv {
            tlb: &mut cpu.tlb,
            mem,
            bus,
            cost,
            clock,
            mmu: MmuRegs::from_regs(&vmcs.guest),
            guest: Some(guest_ctx),
        };
        match deliver(&mut vmcs.guest, &mut env, inj.vector, inj.error_code) {
            Delivery::Done => {}
            Delivery::Exit(reason) => {
                // Retry the injection after the hypervisor services
                // the fault (a shadow-table fill, typically).
                vmcs.injection = Some(inj);
                return exit_guest(cpu, vmcs, reason);
            }
            Delivery::Fatal => return exit_guest(cpu, vmcs, ExitReason::TripleFault),
        }
    }

    let deadline = quantum.map(|q| *clock + q);

    loop {
        if bus.next_event_due().is_some_and(|d| d <= *clock) {
            bus.process_events(mem, *clock);
        }
        // The debug-exit device stops the machine; hand control back
        // (the caller observes `bus.ctl.shutdown`).
        if bus.ctl.shutdown.is_some() {
            return exit_guest(cpu, vmcs, ExitReason::Preempt);
        }

        if vmcs.recall_pending {
            vmcs.recall_pending = false;
            return exit_guest(cpu, vmcs, ExitReason::Recall);
        }
        if deadline.is_some_and(|d| *clock >= d) {
            return exit_guest(cpu, vmcs, ExitReason::Preempt);
        }

        // Physical interrupts: exit (full virtualization) or deliver
        // straight into the guest (direct assignment).
        let shadow_was = vmcs.sti_shadow;
        vmcs.sti_shadow = false;
        if bus.pic.intr() {
            if vmcs.intercept_extint {
                if let Some(vec) = bus.pic.ack() {
                    return exit_guest(cpu, vmcs, ExitReason::ExtInt { vector: vec });
                }
            } else if !shadow_was && vmcs.guest.if_set() {
                if let Some(vec) = bus.pic.ack() {
                    vmcs.halted = false;
                    *clock += IRQ_DELIVERY_CYCLES;
                    let mut env = CpuEnv {
                        tlb: &mut cpu.tlb,
                        mem,
                        bus,
                        cost,
                        clock,
                        mmu: MmuRegs::from_regs(&vmcs.guest),
                        guest: Some(guest_ctx),
                    };
                    match deliver(&mut vmcs.guest, &mut env, vec, None) {
                        Delivery::Done => {}
                        Delivery::Exit(reason) => {
                            vmcs.injection = Some(crate::vmx::Injection {
                                vector: vec,
                                error_code: None,
                            });
                            return exit_guest(cpu, vmcs, reason);
                        }
                        Delivery::Fatal => return exit_guest(cpu, vmcs, ExitReason::TripleFault),
                    }
                }
            }
        }

        // Interrupt-window exiting.
        if vmcs.intwin_exit && !shadow_was && vmcs.guest.if_set() {
            vmcs.intwin_exit = false;
            return exit_guest(cpu, vmcs, ExitReason::IntWindow);
        }

        // Halted guest (HLT not intercepted): idle until an event.
        if vmcs.halted {
            match bus.next_event_due() {
                Some(due) => {
                    let skip = due.saturating_sub(*clock);
                    cpu.idle_cycles += skip;
                    *clock = due;
                    continue;
                }
                None => return exit_guest(cpu, vmcs, ExitReason::TripleFault),
            }
        }

        let mut env = CpuEnv {
            tlb: &mut cpu.tlb,
            mem,
            bus,
            cost,
            clock,
            mmu: MmuRegs::from_regs(&vmcs.guest),
            guest: Some(guest_ctx),
        };

        // Fetch and check intercepts before executing.
        let step = fetch(&mut env, &mut cpu.icache, vmcs.guest.eip).and_then(|insn| {
            if let Some(reason) = intercept(&insn, &vmcs.guest, vmcs) {
                return Err(CpuErr::Exit(reason));
            }
            execute(&insn, &mut vmcs.guest, &mut env)
        });
        *clock += 1;
        cpu.instret += 1;

        match step {
            Ok(Exec::Normal) | Ok(Exec::RepContinue) => {}
            Ok(Exec::Halt) => vmcs.halted = true,
            Ok(Exec::StiShadow) => vmcs.sti_shadow = true,
            Err(CpuErr::Exit(reason)) => return exit_guest(cpu, vmcs, reason),
            Err(CpuErr::Fault(f)) => {
                if let Fault::Page { addr, .. } = f {
                    vmcs.guest.cr2 = addr;
                }
                let mut env = CpuEnv {
                    tlb: &mut cpu.tlb,
                    mem,
                    bus,
                    cost,
                    clock,
                    mmu: MmuRegs::from_regs(&vmcs.guest),
                    guest: Some(guest_ctx),
                };
                match deliver(&mut vmcs.guest, &mut env, f.vector(), f.error_code()) {
                    Delivery::Done => {}
                    Delivery::Exit(reason) => {
                        // The faulting instruction will re-execute and
                        // re-raise the exception after the fill.
                        return exit_guest(cpu, vmcs, reason);
                    }
                    Delivery::Fatal => return exit_guest(cpu, vmcs, ExitReason::TripleFault),
                }
            }
        }
    }
}

fn exit_guest(cpu: &mut Cpu, vmcs: &Vmcs, reason: ExitReason) -> ExitReason {
    if vmcs.vpid == 0 {
        cpu.tlb.flush_all();
    }
    reason
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use crate::vmx::{Injection, PagingVirt};
    use nova_x86::paging::npte;
    use nova_x86::reg::flags;
    use nova_x86::Asm;

    fn machine() -> Machine {
        Machine::new(MachineConfig::core_i7(32 << 20))
    }

    /// Builds an identity EPT over the first `mb` megabytes with
    /// 4 KB pages, tables placed from 1 MB of a scratch region.
    fn ident_ept(m: &mut Machine, mb: u64) -> u64 {
        let root = 24 << 20;
        let l2 = root + 0x1000;
        let l1 = root + 0x2000;
        m.mem.write_u64(root, l2 | npte::RWX);
        m.mem.write_u64(l2, l1 | npte::RWX);
        let pages = mb * 256;
        let tables = pages.div_ceil(512);
        for t in 0..tables {
            let l0 = root + 0x3000 + t * 0x1000;
            m.mem.write_u64(l1 + t * 8, l0 | npte::RWX);
            for i in 0..512 {
                let p = t * 512 + i;
                if p < pages {
                    m.mem.write_u64(l0 + i * 8, (p << 12) | npte::RWX);
                }
            }
        }
        root
    }

    fn guest_vmcs(m: &mut Machine, code: &[u8], entry: u32) -> Vmcs {
        let root = ident_ept(m, 16);
        let mut v = Vmcs::new(
            PagingVirt::Nested {
                root,
                fmt: nova_x86::paging::NestedFormat::Ept4Level,
            },
            1,
        );
        m.mem.write_bytes(entry as u64, code);
        v.guest = Regs::at(entry);
        v.guest.set(Reg::Esp, 0x8000);
        v
    }

    fn run(m: &mut Machine, v: &mut Vmcs, quantum: Option<Cycles>) -> ExitReason {
        let cost = m.cost;
        run_guest(
            &mut m.cpus[0],
            &mut m.mem,
            &mut m.bus,
            &cost,
            &mut m.clock,
            v,
            quantum,
        )
    }

    #[test]
    fn cpuid_always_exits() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.nop();
        a.cpuid();
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        let exit = run(&mut m, &mut v, None);
        assert_eq!(exit, ExitReason::Cpuid { len: 2 });
        assert_eq!(v.guest.eip, 0x1001, "EIP points AT the instruction");
    }

    #[test]
    fn io_exit_carries_qualification() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_r8i(nova_x86::Reg8::Al, 0x7f);
        a.out_imm_al(0x21);
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        let exit = run(&mut m, &mut v, None);
        assert_eq!(
            exit,
            ExitReason::IoPort {
                port: 0x21,
                size: OpSize::Byte,
                write: true,
                len: 2,
            }
        );
        assert_eq!(v.guest.get8(nova_x86::Reg8::Al), 0x7f, "data in AL");
    }

    #[test]
    fn passthrough_port_does_not_exit() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_r8i(nova_x86::Reg8::Al, b'Z');
        a.mov_ri(Reg::Edx, crate::serial::COM1 as u32);
        a.out_dx_al();
        a.hlt();
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        v.passthrough_ports(crate::serial::COM1, 8);
        let exit = run(&mut m, &mut v, None);
        assert_eq!(exit, ExitReason::Hlt { len: 1 }, "only HLT exits");
        assert_eq!(m.serial_text(), "Z", "write reached the real UART");
    }

    #[test]
    fn ept_violation_reports_gpa_and_preserves_eip() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Ebx, 0x4000_0000u32); // beyond the identity EPT
        a.mov_mi(nova_x86::MemRef::base_disp(Reg::Ebx, 8), 5);
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        let exit = run(&mut m, &mut v, None);
        match exit {
            ExitReason::EptViolation { gpa, access } => {
                assert_eq!(gpa, 0x4000_0008);
                assert!(access.write);
            }
            other => panic!("expected EPT violation, got {other:?}"),
        }
        assert_eq!(v.guest.eip, 0x1005, "EIP at the faulting instruction");
    }

    #[test]
    fn injection_delivers_through_guest_idt() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        // IDT descriptor at 0x6000 -> IDT at 0x5000; gate 0x21 -> 0x2000.
        a.hlt(); // never reached: injection fires first
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        m.mem.write_u32(0x5000 + 0x21 * 8, 0x0008_2000);
        m.mem.write_u32(0x5000 + 0x21 * 8 + 4, 0x8e00);
        m.mem.write_bytes(0x2000, &[0xf4]); // handler: hlt
        v.guest.idt_base = 0x5000;
        v.guest.idt_limit = 0x7ff;
        v.guest.eflags |= flags::IF;
        v.injection = Some(Injection {
            vector: 0x21,
            error_code: None,
        });
        let exit = run(&mut m, &mut v, None);
        assert_eq!(exit, ExitReason::Hlt { len: 1 });
        assert_eq!(v.guest.eip, 0x2000, "woke in the handler");
        assert!(v.injection.is_none(), "injection consumed");
        assert!(!v.guest.if_set(), "IF cleared by delivery");
        // The pushed frame returns to the original EIP.
        let esp = v.guest.get(Reg::Esp);
        assert_eq!(m.mem.read_u32(esp as u64), 0x1000);
    }

    #[test]
    fn interrupt_window_exit_waits_for_sti() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.cli();
        a.nop();
        a.nop();
        a.sti();
        a.nop(); // shadow instruction
        a.nop();
        a.hlt();
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        v.intwin_exit = true;
        let exit = run(&mut m, &mut v, None);
        assert_eq!(exit, ExitReason::IntWindow);
        // The window opened after STI's shadow: one instruction past it.
        assert_eq!(v.guest.eip, 0x1000 + 5, "exited after the shadow insn");
        assert!(!v.intwin_exit, "one-shot");
    }

    #[test]
    fn recall_forces_immediate_exit() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        for _ in 0..100 {
            a.nop();
        }
        a.hlt();
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        v.recall_pending = true;
        let exit = run(&mut m, &mut v, None);
        assert_eq!(exit, ExitReason::Recall);
        assert_eq!(v.guest.eip, 0x1000, "no instruction executed");
        assert!(!v.recall_pending);
    }

    #[test]
    fn preemption_quantum_expires() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        let top = a.here_label();
        a.jmp(top); // spin forever
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        let exit = run(&mut m, &mut v, Some(10_000));
        assert_eq!(exit, ExitReason::Preempt);
        assert!(m.clock >= 10_000);
    }

    #[test]
    fn untagged_vmcs_flushes_tlb_on_transitions() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.mov_rm(Reg::Eax, nova_x86::MemRef::abs(0x3000));
        a.cpuid();
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        v.vpid = 0; // no tags
                    // Seed a host entry: it must not survive VM entry.
        m.cpus[0].tlb.insert(crate::tlb::TlbEntry {
            vpid: 0,
            vpn: 0x99,
            hpa: 0x99000,
            page_size: 4096,
            write: true,
        });
        let _ = run(&mut m, &mut v, None);
        assert_eq!(
            m.cpus[0].tlb.occupancy(),
            0,
            "exit flushed everything (no VPID)"
        );
        assert!(m.cpus[0].tlb.stats.flushes >= 2, "entry + exit flushes");
    }

    #[test]
    fn tagged_vmcs_preserves_other_tags() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        a.cpuid();
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        m.cpus[0].tlb.insert(crate::tlb::TlbEntry {
            vpid: 0,
            vpn: 0x99,
            hpa: 0x99000,
            page_size: 4096,
            write: true,
        });
        let _ = run(&mut m, &mut v, None);
        assert!(
            m.cpus[0].tlb.lookup(0, 0x99 << 12).is_some(),
            "host entry survives tagged transitions"
        );
    }

    #[test]
    fn guest_triple_fault_on_bad_idt() {
        let mut m = machine();
        // Division by zero with no IDT: delivery fails -> triple fault.
        let mut a = Asm::new(0x1000);
        a.xor_rr(Reg::Ebx, Reg::Ebx);
        a.mov_ri(Reg::Eax, 1);
        a.div_r(Reg::Ebx);
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        let exit = run(&mut m, &mut v, None);
        assert_eq!(exit, ExitReason::TripleFault);
    }

    #[test]
    fn direct_interrupt_delivery_without_extint_exits() {
        let mut m = machine();
        let mut a = Asm::new(0x1000);
        // IDT gate 0x20 -> handler at 0x2000 (out 0xf4 to stop).
        a.sti();
        let spin = a.here_label();
        a.jmp(spin);
        let code = a.finish();
        let mut v = guest_vmcs(&mut m, &code, 0x1000);
        m.mem.write_u32(0x5000 + 0x20 * 8, 0x0008_2000);
        m.mem.write_u32(0x5000 + 0x20 * 8 + 4, 0x8e00);
        let mut h = Asm::new(0x2000);
        h.mov_r8i(nova_x86::Reg8::Al, 7);
        h.mov_ri(Reg::Edx, crate::machine::DEBUG_EXIT_PORT as u32);
        h.out_dx_al();
        h.iret();
        m.mem.write_bytes(0x2000, &h.finish());
        v.guest.idt_base = 0x5000;
        v.guest.idt_limit = 0x7ff;
        v.intercept_extint = false;
        v.passthrough_ports(0, u16::MAX);
        v.passthrough_ports(u16::MAX, 1);
        // Unmask and pulse line 0 while the guest spins.
        m.bus.pic.io_write(crate::pic::MASTER_DATA, 0);
        m.bus.pic.pulse(0);
        let exit = run(&mut m, &mut v, Some(100_000));
        // The interrupt was delivered INTO the guest (no ExtInt exit);
        // its handler stopped the machine via the debug port.
        assert_eq!(exit, ExitReason::Preempt, "stopped by shutdown check");
        assert_eq!(m.bus.ctl.shutdown, Some(7));
    }
}
