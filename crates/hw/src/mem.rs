//! Physical memory (RAM) of the simulated machine.
//!
//! MMIO regions are *not* backed here; the machine routes physical
//! accesses that fall into device windows to the device bus. Reads of
//! unpopulated addresses return zeros the way open bus lines read on
//! commodity chipsets; writes outside RAM are dropped. Accessors exist
//! in byte, u32 and u64 granularity because page-table walkers, DMA
//! engines and the CPU all touch memory here.

use nova_x86::insn::OpSize;

use crate::PAddr;

/// Byte-addressable RAM.
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed RAM.
    pub fn new(size: usize) -> PhysMem {
        PhysMem {
            bytes: vec![0; size],
        }
    }

    /// RAM size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if `addr..addr+len` lies inside RAM.
    pub fn contains(&self, addr: PAddr, len: u32) -> bool {
        (addr as usize)
            .checked_add(len as usize)
            .is_some_and(|end| end <= self.bytes.len())
    }

    /// Reads one byte; unpopulated addresses read as zero.
    pub fn read_u8(&self, addr: PAddr) -> u8 {
        self.bytes.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes one byte; writes outside RAM are dropped.
    pub fn write_u8(&mut self, addr: PAddr, val: u8) {
        if let Some(b) = self.bytes.get_mut(addr as usize) {
            *b = val;
        }
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: PAddr) -> u32 {
        let a = addr as usize;
        match self.bytes.get(a..a + 4) {
            Some(s) => u32::from_le_bytes(s.try_into().unwrap()),
            None => {
                let mut v = 0;
                for i in 0..4 {
                    v |= (self.read_u8(addr + i) as u32) << (8 * i);
                }
                v
            }
        }
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: PAddr, val: u32) {
        let a = addr as usize;
        if let Some(s) = self.bytes.get_mut(a..a + 4) {
            s.copy_from_slice(&val.to_le_bytes());
        } else {
            for i in 0..4 {
                self.write_u8(addr + i, (val >> (8 * i)) as u8);
            }
        }
    }

    /// Reads a little-endian u64 (used by 64-bit EPT entries).
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        self.read_u32(addr) as u64 | (self.read_u32(addr + 4) as u64) << 32
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: PAddr, val: u64) {
        self.write_u32(addr, val as u32);
        self.write_u32(addr + 4, (val >> 32) as u32);
    }

    /// Reads an operand-sized value.
    pub fn read_sized(&self, addr: PAddr, size: OpSize) -> u32 {
        match size {
            OpSize::Byte => self.read_u8(addr) as u32,
            OpSize::Dword => self.read_u32(addr),
        }
    }

    /// Writes an operand-sized value.
    pub fn write_sized(&mut self, addr: PAddr, size: OpSize, val: u32) {
        match size {
            OpSize::Byte => self.write_u8(addr, val as u8),
            OpSize::Dword => self.write_u32(addr, val),
        }
    }

    /// Copies a byte slice into RAM (image loading, DMA).
    pub fn write_bytes(&mut self, addr: PAddr, data: &[u8]) {
        let a = addr as usize;
        if let Some(s) = self.bytes.get_mut(a..a + data.len()) {
            s.copy_from_slice(data);
        } else {
            for (i, b) in data.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Copies bytes out of RAM.
    pub fn read_bytes(&self, addr: PAddr, len: usize) -> Vec<u8> {
        let a = addr as usize;
        match self.bytes.get(a..a + len) {
            Some(s) => s.to_vec(),
            None => (0..len).map(|i| self.read_u8(addr + i as u64)).collect(),
        }
    }

    /// Copies bytes out of RAM into a caller-provided buffer without
    /// allocating; bytes beyond the end of RAM read as zero.
    pub fn read_into(&self, addr: PAddr, out: &mut [u8]) {
        let a = addr as usize;
        match self.bytes.get(a..a.wrapping_add(out.len())) {
            Some(s) => out.copy_from_slice(s),
            None => {
                for (i, b) in out.iter_mut().enumerate() {
                    *b = self.read_u8(addr.wrapping_add(i as u64));
                }
            }
        }
    }

    /// Borrows `len` bytes of RAM in place (zero-copy read access);
    /// `None` if the range is not fully RAM-backed.
    pub fn slice(&self, addr: PAddr, len: usize) -> Option<&[u8]> {
        let a = addr as usize;
        self.bytes.get(a..a.checked_add(len)?)
    }

    /// Borrows `len` bytes of RAM mutably in place (zero-copy write
    /// access); `None` if the range is not fully RAM-backed.
    pub fn slice_mut(&mut self, addr: PAddr, len: usize) -> Option<&mut [u8]> {
        let a = addr as usize;
        self.bytes.get_mut(a..a.checked_add(len)?)
    }

    /// Fills a region with a byte value.
    pub fn fill(&mut self, addr: PAddr, len: usize, val: u8) {
        let a = addr as usize;
        if let Some(s) = self.bytes.get_mut(a..a + len) {
            s.fill(val);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = PhysMem::new(4096);
        m.write_u32(0x100, 0xdead_beef);
        assert_eq!(m.read_u32(0x100), 0xdead_beef);
        assert_eq!(m.read_u8(0x100), 0xef);
        assert_eq!(m.read_u8(0x103), 0xde);
        m.write_u64(0x200, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x200), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u32(0x204), 0x0123_4567);
    }

    #[test]
    fn out_of_range_reads_zero_writes_dropped() {
        let mut m = PhysMem::new(16);
        assert_eq!(m.read_u32(0x1_0000), 0);
        m.write_u32(0x1_0000, 0xffff_ffff); // dropped, no panic
        assert_eq!(m.read_u32(0x1_0000), 0);
        // Straddling the end.
        m.write_u32(14, 0xaabbccdd);
        assert_eq!(m.read_u8(14), 0xdd);
        assert_eq!(m.read_u8(15), 0xcc);
        assert_eq!(m.read_u32(14), 0x0000_ccdd);
    }

    #[test]
    fn bulk_ops() {
        let mut m = PhysMem::new(1024);
        m.write_bytes(0x10, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x10, 5), vec![1, 2, 3, 4, 5]);
        m.fill(0x20, 8, 0xaa);
        assert_eq!(m.read_u32(0x20), 0xaaaa_aaaa);
    }

    #[test]
    fn contains_checks_bounds() {
        let m = PhysMem::new(4096);
        assert!(m.contains(0, 4096));
        assert!(m.contains(4092, 4));
        assert!(!m.contains(4093, 4));
        assert!(!m.contains(u64::MAX, 1));
    }
}
