//! Translation lookaside buffer with tagged entries.
//!
//! The TLB caches final linear→host-physical translations. Entries are
//! tagged with a virtual-processor identifier (VPID on Intel, ASID on
//! AMD; tag 0 is the host/native context), which lets the hardware skip
//! the full flush on VM transitions — the effect the paper measures in
//! the "EPT with VPID" vs "EPT w/o VPID" bars of Figure 5.
//!
//! The model is direct-mapped with separate small- and large-page
//! arrays. Small host pages therefore cause more capacity/conflict
//! evictions than 2 MB/4 MB pages — the ~2% "small pages" overhead of
//! Figure 5 comes from exactly this pressure.

use crate::Cycles;

/// Number of small-page entries (direct-mapped).
pub const SMALL_SETS: usize = 256;
/// Number of large-page entries (direct-mapped).
pub const LARGE_SETS: usize = 48;

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Tag: virtual-processor identifier (0 = host).
    pub vpid: u16,
    /// Linear page frame number (address >> page bits).
    pub vpn: u64,
    /// Host-physical base address of the mapped page.
    pub hpa: u64,
    /// Page size in bytes (4 KB, 2 MB or 4 MB).
    pub page_size: u64,
    /// Write permission.
    pub write: bool,
}

/// TLB hit/miss/flush statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Full flushes performed.
    pub flushes: u64,
    /// Entries discarded by full flushes (refill pressure indicator).
    pub flushed_entries: u64,
}

/// The TLB: split instruction/data arrays (as on the paper's
/// processors), each direct-mapped with separate small- and large-page
/// sets.
pub struct Tlb {
    small: [Vec<Option<TlbEntry>>; 2],
    large: [Vec<Option<TlbEntry>>; 2],
    /// Statistics since construction (or the last `reset_stats`).
    pub stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new() -> Tlb {
        Tlb {
            small: [vec![None; SMALL_SETS], vec![None; SMALL_SETS]],
            large: [vec![None; LARGE_SETS], vec![None; LARGE_SETS]],
            stats: TlbStats::default(),
        }
    }

    /// Set index of a large-page entry covering `addr`. Indexed at
    /// 4 MB granularity: the largest page size, and one no smaller
    /// large page ever straddles — so insert and lookup always agree.
    fn large_set(addr: u64) -> usize {
        ((addr >> 22) as usize) % LARGE_SETS
    }

    /// Looks up the translation for linear address `addr` under `vpid`
    /// in the instruction (`fetch`) or data array. Counts a hit or
    /// miss.
    pub fn lookup_for(&mut self, vpid: u16, addr: u64, fetch: bool) -> Option<TlbEntry> {
        let side = fetch as usize;
        // Large pages first: a hit there covers the small lookup.
        let lset = Self::large_set(addr);
        if let Some(e) = self.large[side][lset] {
            if e.vpid == vpid && addr / e.page_size == e.vpn {
                self.stats.hits += 1;
                return Some(e);
            }
        }
        let vpn = addr >> 12;
        let set = (vpn as usize) % SMALL_SETS;
        if let Some(e) = self.small[side][set] {
            if e.vpid == vpid && e.vpn == vpn {
                self.stats.hits += 1;
                return Some(e);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Data-side lookup (compatibility helper).
    pub fn lookup(&mut self, vpid: u16, addr: u64) -> Option<TlbEntry> {
        self.lookup_for(vpid, addr, false)
    }

    /// Inserts a translation into the instruction or data array,
    /// evicting whatever occupies its set.
    pub fn insert_for(&mut self, e: TlbEntry, fetch: bool) {
        let side = fetch as usize;
        if e.page_size > 4096 {
            let set = Self::large_set(e.vpn * e.page_size);
            self.large[side][set] = Some(e);
        } else {
            let set = (e.vpn as usize) % SMALL_SETS;
            self.small[side][set] = Some(e);
        }
    }

    /// Data-side insert (compatibility helper).
    pub fn insert(&mut self, e: TlbEntry) {
        self.insert_for(e, false)
    }

    /// Invalidates the entries mapping linear address `addr` for
    /// `vpid` in both arrays (INVLPG semantics).
    pub fn invalidate(&mut self, vpid: u16, addr: u64) {
        for side in 0..2 {
            let vpn = addr >> 12;
            let set = (vpn as usize) % SMALL_SETS;
            if let Some(e) = self.small[side][set] {
                if e.vpid == vpid && e.vpn == vpn {
                    self.small[side][set] = None;
                }
            }
            let lset = Self::large_set(addr);
            if let Some(e) = self.large[side][lset] {
                if e.vpid == vpid && addr / e.page_size == e.vpn {
                    self.large[side][lset] = None;
                }
            }
        }
    }

    /// Flushes all entries of one tag (address-space switch with tagged
    /// TLB, or vTLB flush).
    pub fn flush_vpid(&mut self, vpid: u16) {
        let mut discarded = 0;
        for arr in self.small.iter_mut().chain(self.large.iter_mut()) {
            for e in arr.iter_mut() {
                if e.is_some_and(|x| x.vpid == vpid) {
                    *e = None;
                    discarded += 1;
                }
            }
        }
        self.stats.flushes += 1;
        self.stats.flushed_entries += discarded;
    }

    /// Flushes every tag of a set (a vCPU whose shadow-table cache owns
    /// one VPID per cached address space releases them all at once on
    /// teardown). Tag 0 widens to a full flush — an untagged TLB cannot
    /// flush selectively.
    pub fn flush_vpids(&mut self, vpids: impl IntoIterator<Item = u16>) {
        for v in vpids {
            if v == 0 {
                self.flush_all();
            } else {
                self.flush_vpid(v);
            }
        }
    }

    /// Flushes everything (untagged VM transition, CR3 write on a CPU
    /// without tags).
    pub fn flush_all(&mut self) {
        let mut discarded = 0;
        for arr in self.small.iter_mut().chain(self.large.iter_mut()) {
            for e in arr.iter_mut() {
                if e.is_some() {
                    *e = None;
                    discarded += 1;
                }
            }
        }
        self.stats.flushes += 1;
        self.stats.flushed_entries += discarded;
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.small
            .iter()
            .chain(self.large.iter())
            .flat_map(|a| a.iter())
            .filter(|e| e.is_some())
            .count()
    }

    /// Amortized cycle penalty of the refills caused by the most recent
    /// full flush, given a per-entry refill cost.
    pub fn refill_penalty(occupancy_before: usize, per_entry: Cycles) -> Cycles {
        occupancy_before as Cycles * per_entry
    }

    /// Resets statistics without touching entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_entry(vpid: u16, vpn: u64) -> TlbEntry {
        TlbEntry {
            vpid,
            vpn,
            hpa: vpn << 12,
            page_size: 4096,
            write: true,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new();
        t.insert(small_entry(1, 0x10));
        let e = t.lookup(1, 0x10_123).expect("hit");
        assert_eq!(e.hpa, 0x10_000);
        assert_eq!(t.stats.hits, 1);
    }

    #[test]
    fn vpid_tags_isolate() {
        let mut t = Tlb::new();
        t.insert(small_entry(1, 0x10));
        assert!(t.lookup(2, 0x10_000).is_none(), "other tag must miss");
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn large_page_covers_range() {
        let mut t = Tlb::new();
        t.insert(TlbEntry {
            vpid: 0,
            vpn: 0x4020_0000 / (2 << 20),
            hpa: 0x80_0000,
            page_size: 2 << 20,
            write: true,
        });
        assert!(t.lookup(0, 0x4020_0000).is_some());
        assert!(t.lookup(0, 0x4030_0000).is_some()); // same 2 MB page
        assert!(t.lookup(0, 0x4040_0000).is_none()); // next page
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut t = Tlb::new();
        t.insert(small_entry(0, 5));
        t.insert(small_entry(0, 5 + SMALL_SETS as u64)); // same set
        assert!(t.lookup(0, 5 << 12).is_none(), "conflicting entry evicted");
    }

    #[test]
    fn invalidate_single_entry() {
        let mut t = Tlb::new();
        t.insert(small_entry(3, 7));
        t.invalidate(3, 7 << 12);
        assert!(t.lookup(3, 7 << 12).is_none());
    }

    #[test]
    fn flush_vpid_spares_other_tags() {
        let mut t = Tlb::new();
        t.insert(small_entry(1, 1));
        t.insert(small_entry(2, 2));
        t.flush_vpid(1);
        assert!(t.lookup(1, 1 << 12).is_none());
        assert!(t.lookup(2, 2 << 12).is_some());
        assert_eq!(t.stats.flushes, 1);
        assert_eq!(t.stats.flushed_entries, 1);
    }

    #[test]
    fn flush_all_counts_occupancy() {
        let mut t = Tlb::new();
        for i in 0..10 {
            t.insert(small_entry(0, i));
        }
        assert_eq!(t.occupancy(), 10);
        t.flush_all();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats.flushed_entries, 10);
    }

    #[test]
    fn refill_penalty_scales() {
        assert_eq!(Tlb::refill_penalty(10, 16), 160);
        assert_eq!(Tlb::refill_penalty(0, 16), 0);
    }
}
