//! Hardware virtualization extension: VMCS, intercept controls and VM
//! exit reasons (the Intel VT-x / AMD-V model of the paper).
//!
//! The virtual-machine control structure holds the guest's register
//! state plus the controls the hypervisor programs: the I/O intercept
//! bitmap, exception intercepts, instruction intercepts, the nested
//! paging or shadow-paging root, the VPID tag, pending event injection,
//! and the preemption quantum. Reading guest state out of the VMCS
//! costs [`crate::cost::CostModel::vmread`] per field group — the paper
//! optimizes exactly this with per-portal message transfer descriptors
//! (Section 5.2).

use nova_x86::paging::{Access, NestedFormat};
use nova_x86::reg::Regs;

use crate::{Cycles, PAddr};

/// Guest-state field groups, the granularity of VMREAD/VMWRITE and of
/// the message transfer descriptor (MTD) stored in NOVA portals.
pub mod mtd {
    /// EAX, ECX, EDX, EBX.
    pub const GPR_ACDB: u32 = 1 << 0;
    /// EBP, ESI, EDI.
    pub const GPR_BSD: u32 = 1 << 1;
    /// ESP.
    pub const ESP: u32 = 1 << 2;
    /// EIP and instruction length.
    pub const EIP: u32 = 1 << 3;
    /// EFLAGS.
    pub const EFL: u32 = 1 << 4;
    /// Control registers CR0, CR2, CR3, CR4.
    pub const CR: u32 = 1 << 5;
    /// IDT register.
    pub const IDT: u32 = 1 << 6;
    /// Exit qualification (fault address, port number, ...).
    pub const QUAL: u32 = 1 << 7;
    /// Interruptibility / activity state.
    pub const STA: u32 = 1 << 8;
    /// Event injection field.
    pub const INJ: u32 = 1 << 9;
    /// Time-stamp counter offset.
    pub const TSC: u32 = 1 << 10;
    /// Every group.
    pub const ALL: u32 = (1 << 11) - 1;

    /// Number of set groups (each costs one VMREAD).
    pub fn group_count(mtd: u32) -> u32 {
        mtd.count_ones()
    }
}

/// Why a virtual CPU left guest mode. Mirrors the paper's Table 2 event
/// classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// A physical interrupt arrived while the virtual CPU ran.
    ExtInt {
        /// Vector acknowledged from the platform interrupt controller.
        vector: u8,
    },
    /// The guest opened its interrupt window after an injection was
    /// requested.
    IntWindow,
    /// CPUID executed.
    Cpuid {
        /// Instruction length (hardware-reported).
        len: u8,
    },
    /// HLT executed.
    Hlt {
        /// Instruction length.
        len: u8,
    },
    /// INVLPG executed (intercepted only in vTLB mode).
    Invlpg {
        /// The linear address being invalidated.
        addr: u32,
        /// Instruction length.
        len: u8,
    },
    /// MOV to/from a control register.
    MovCr {
        /// Control register number.
        cr: u8,
        /// `true` for MOV to CR (write).
        write: bool,
        /// The GPR operand.
        gpr: nova_x86::Reg,
        /// Instruction length.
        len: u8,
    },
    /// IN/OUT hit an intercepted port.
    IoPort {
        /// Port number.
        port: u16,
        /// Operand size.
        size: nova_x86::OpSize,
        /// `true` for OUT.
        write: bool,
        /// Instruction length.
        len: u8,
    },
    /// A guest-physical access missed the nested page table (MMIO or an
    /// unbacked page). The VMM decodes the faulting instruction.
    EptViolation {
        /// Guest-physical address.
        gpa: u64,
        /// The offending access.
        access: Access,
    },
    /// #PF intercepted (vTLB / shadow-paging mode only).
    PageFault {
        /// Faulting linear address (would-be CR2).
        addr: u32,
        /// Architectural error code.
        err: u32,
    },
    /// VMCALL from an enlightened guest.
    Vmcall {
        /// Instruction length.
        len: u8,
    },
    /// RDTSC executed (intercepted only when configured).
    Rdtsc {
        /// Instruction length.
        len: u8,
    },
    /// The hypervisor recalled this virtual CPU (Section 7.5).
    Recall,
    /// The preemption quantum expired.
    Preempt,
    /// The guest triple-faulted; the VMM decides what to do.
    TripleFault,
}

impl ExitReason {
    /// Stable index for per-reason counting (Table 2 rows).
    pub fn index(&self) -> usize {
        match self {
            ExitReason::ExtInt { .. } => 0,
            ExitReason::IntWindow => 1,
            ExitReason::Cpuid { .. } => 2,
            ExitReason::Hlt { .. } => 3,
            ExitReason::Invlpg { .. } => 4,
            ExitReason::MovCr { .. } => 5,
            ExitReason::IoPort { .. } => 6,
            ExitReason::EptViolation { .. } => 7,
            ExitReason::PageFault { .. } => 8,
            ExitReason::Vmcall { .. } => 9,
            ExitReason::Rdtsc { .. } => 10,
            ExitReason::Recall => 11,
            ExitReason::Preempt => 12,
            ExitReason::TripleFault => 13,
        }
    }

    /// Number of distinct exit reasons.
    pub const COUNT: usize = 14;

    /// Human-readable name (Table 2 row labels).
    pub fn name(&self) -> &'static str {
        match self {
            ExitReason::ExtInt { .. } => "Hardware Interrupt",
            ExitReason::IntWindow => "Interrupt Window",
            ExitReason::Cpuid { .. } => "CPUID",
            ExitReason::Hlt { .. } => "HLT",
            ExitReason::Invlpg { .. } => "INVLPG",
            ExitReason::MovCr { .. } => "CR Read/Write",
            ExitReason::IoPort { .. } => "Port I/O",
            ExitReason::EptViolation { .. } => "Memory-Mapped I/O",
            ExitReason::PageFault { .. } => "Page Fault",
            ExitReason::Vmcall { .. } => "VMCALL",
            ExitReason::Rdtsc { .. } => "RDTSC",
            ExitReason::Recall => "Recall",
            ExitReason::Preempt => "Preemption",
            ExitReason::TripleFault => "Triple Fault",
        }
    }
}

/// Memory-virtualization mode of a VMCS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagingVirt {
    /// Hardware nested paging; the root of the host dimension and its
    /// format.
    Nested {
        /// Physical address of the EPT/NPT root table.
        root: PAddr,
        /// Table format (Intel 4-level or AMD 2-level).
        fmt: NestedFormat,
    },
    /// Software shadow paging (vTLB): the hardware walks only the
    /// shadow table; #PF always exits.
    Shadow {
        /// Physical address of the active shadow page table.
        root: PAddr,
    },
}

/// An event pending injection into the guest on the next VM entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Vector to deliver.
    pub vector: u8,
    /// Error code, for faulting exceptions.
    pub error_code: Option<u32>,
}

/// The virtual-machine control structure of one virtual CPU.
#[derive(Clone, Debug)]
pub struct Vmcs {
    /// Guest architectural registers.
    pub guest: Regs,
    /// Memory-virtualization configuration.
    pub paging: PagingVirt,
    /// VPID / ASID tag; 0 disables tagging (forcing TLB flushes on
    /// every transition, the "w/o VPID" configuration of Figure 5).
    pub vpid: u16,
    /// Intercepted I/O ports. `None` = intercept everything (the
    /// full-virtualization default); `Some(bitmap)` with clear bits for
    /// directly assigned ports.
    pub io_passthrough: Vec<u64>,
    /// Intercept HLT.
    pub intercept_hlt: bool,
    /// Exit on physical interrupts (cleared only for the paper's
    /// exit-free "Direct" configuration, which delivers them through
    /// the guest IDT).
    pub intercept_extint: bool,
    /// Intercept MOV CR and INVLPG (required in shadow mode).
    pub intercept_cr: bool,
    /// Intercept #PF (required in shadow mode).
    pub intercept_pf: bool,
    /// Intercept RDTSC.
    pub intercept_rdtsc: bool,
    /// Exit when the guest opens its interrupt window.
    pub intwin_exit: bool,
    /// Event injected on next entry.
    pub injection: Option<Injection>,
    /// Guest is halted (activity state).
    pub halted: bool,
    /// Guest is in the one-instruction STI shadow.
    pub sti_shadow: bool,
    /// Remaining preemption quantum in cycles (None = no preemption).
    pub quantum: Option<Cycles>,
    /// Recall request pin: forces an exit before the next instruction.
    pub recall_pending: bool,
    /// TSC offset added to RDTSC results.
    pub tsc_offset: u64,
}

impl Vmcs {
    /// Creates a VMCS with full-virtualization defaults: everything
    /// intercepted, no ports passed through.
    pub fn new(paging: PagingVirt, vpid: u16) -> Vmcs {
        Vmcs {
            guest: Regs::default(),
            paging,
            vpid,
            io_passthrough: vec![0; 1024], // 65536 ports / 64
            intercept_hlt: true,
            intercept_extint: true,
            intercept_cr: false,
            intercept_pf: false,
            intercept_rdtsc: false,
            intwin_exit: false,
            injection: None,
            halted: false,
            sti_shadow: false,
            quantum: None,
            recall_pending: false,
            tsc_offset: 0,
        }
    }

    /// Creates a shadow-paging VMCS with the CR/#PF intercepts the vTLB
    /// algorithm requires.
    pub fn new_shadow(root: PAddr, vpid: u16) -> Vmcs {
        let mut v = Vmcs::new(PagingVirt::Shadow { root }, vpid);
        v.intercept_cr = true;
        v.intercept_pf = true;
        v
    }

    /// Repoints a shadow-paging VMCS at a (possibly different) shadow
    /// root and its TLB tag — the vTLB address-space-switch path, where
    /// the hypervisor swaps cached shadow tables instead of rebuilding
    /// one.
    pub fn set_shadow(&mut self, root: PAddr, vpid: u16) {
        self.paging = PagingVirt::Shadow { root };
        self.vpid = vpid;
    }

    /// Marks a port range as directly assigned (no intercept).
    pub fn passthrough_ports(&mut self, first: u16, count: u16) {
        for p in first..first.saturating_add(count) {
            self.io_passthrough[p as usize / 64] |= 1 << (p % 64);
        }
    }

    /// `true` if accessing `port` exits.
    pub fn io_intercepted(&self, port: u16) -> bool {
        self.io_passthrough[port as usize / 64] & (1 << (port % 64)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_intercepts_all_io() {
        let v = Vmcs::new(
            PagingVirt::Nested {
                root: 0x1000,
                fmt: NestedFormat::Ept4Level,
            },
            1,
        );
        assert!(v.io_intercepted(0x60));
        assert!(v.io_intercepted(0x3f8));
        assert!(v.intercept_hlt);
        assert!(!v.intercept_cr, "CR exits unnecessary with nested paging");
    }

    #[test]
    fn passthrough_clears_intercept() {
        let mut v = Vmcs::new(
            PagingVirt::Nested {
                root: 0,
                fmt: NestedFormat::Ept4Level,
            },
            1,
        );
        v.passthrough_ports(0x1f0, 8);
        assert!(!v.io_intercepted(0x1f0));
        assert!(!v.io_intercepted(0x1f7));
        assert!(v.io_intercepted(0x1f8));
        assert!(v.io_intercepted(0x1ef));
    }

    #[test]
    fn shadow_mode_forces_vtlb_intercepts() {
        let v = Vmcs::new_shadow(0x2000, 3);
        assert!(v.intercept_cr);
        assert!(v.intercept_pf);
    }

    #[test]
    fn mtd_group_count() {
        assert_eq!(mtd::group_count(mtd::ALL), 11);
        assert_eq!(mtd::group_count(mtd::GPR_ACDB | mtd::EIP), 2);
        assert_eq!(mtd::group_count(0), 0);
    }

    #[test]
    fn exit_reason_indices_unique() {
        let reasons = [
            ExitReason::ExtInt { vector: 0 },
            ExitReason::IntWindow,
            ExitReason::Cpuid { len: 2 },
            ExitReason::Hlt { len: 1 },
            ExitReason::Invlpg { addr: 0, len: 3 },
            ExitReason::MovCr {
                cr: 0,
                write: false,
                gpr: nova_x86::Reg::Eax,
                len: 3,
            },
            ExitReason::IoPort {
                port: 0,
                size: nova_x86::OpSize::Byte,
                write: false,
                len: 1,
            },
            ExitReason::EptViolation {
                gpa: 0,
                access: Access::READ,
            },
            ExitReason::PageFault { addr: 0, err: 0 },
            ExitReason::Vmcall { len: 3 },
            ExitReason::Rdtsc { len: 2 },
            ExitReason::Recall,
            ExitReason::Preempt,
            ExitReason::TripleFault,
        ];
        let mut seen = std::collections::HashSet::new();
        for r in reasons {
            assert!(seen.insert(r.index()), "duplicate index for {r:?}");
            assert!(r.index() < ExitReason::COUNT);
            assert!(!r.name().is_empty());
        }
        assert_eq!(seen.len(), ExitReason::COUNT);
    }
}
