//! Discrete-event queue driving device timing: disk completions, NIC
//! packet arrivals, timer expirations.
//!
//! Events are ordered by due cycle with a sequence number as tiebreak so
//! same-cycle events fire in scheduling order (deterministic replay).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycles;

/// An event bound for a device: fired as `Device::event(token)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Index of the target device on the bus.
    pub device: usize,
    /// Opaque token interpreted by the device.
    pub token: u64,
}

#[derive(PartialEq, Eq)]
struct Entry {
    due: Cycles,
    seq: u64,
    ev: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Cycle-ordered event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `ev` to fire at absolute cycle `due`.
    pub fn schedule(&mut self, due: Cycles, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            due,
            seq: self.seq,
            ev,
        }));
    }

    /// The due time of the earliest pending event.
    pub fn next_due(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.0.due)
    }

    /// Pops the earliest event if it is due at or before `now`,
    /// returning its due time so the dispatcher can run it at the
    /// moment it fired (not at the end of the processing window).
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, Event)> {
        if self.next_due()? <= now {
            let e = self.heap.pop().unwrap().0;
            Some((e.due, e.ev))
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events for a device (used when a device is
    /// reset).
    pub fn cancel_device(&mut self, device: usize) {
        let entries: Vec<_> = self
            .heap
            .drain()
            .filter(|e| e.0.ev.device != device)
            .collect();
        self.heap.extend(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(
            30,
            Event {
                device: 3,
                token: 0,
            },
        );
        q.schedule(
            10,
            Event {
                device: 1,
                token: 0,
            },
        );
        q.schedule(
            20,
            Event {
                device: 2,
                token: 0,
            },
        );
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(100).unwrap().1.device, 1);
        assert_eq!(q.pop_due(100).unwrap().1.device, 2);
        assert_eq!(q.pop_due(100).unwrap().1.device, 3);
        assert!(q.pop_due(100).is_none());
    }

    #[test]
    fn same_cycle_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(
                7,
                Event {
                    device: i,
                    token: 0,
                },
            );
        }
        for i in 0..5 {
            assert_eq!(q.pop_due(7).unwrap().1.device, i);
        }
    }

    #[test]
    fn not_due_yet() {
        let mut q = EventQueue::new();
        q.schedule(
            50,
            Event {
                device: 0,
                token: 9,
            },
        );
        assert!(q.pop_due(49).is_none());
        assert_eq!(
            q.pop_due(50).unwrap(),
            (
                50,
                Event {
                    device: 0,
                    token: 9
                }
            )
        );
    }

    #[test]
    fn cancel_device_removes_only_that_device() {
        let mut q = EventQueue::new();
        q.schedule(
            1,
            Event {
                device: 0,
                token: 0,
            },
        );
        q.schedule(
            2,
            Event {
                device: 1,
                token: 0,
            },
        );
        q.schedule(
            3,
            Event {
                device: 0,
                token: 1,
            },
        );
        q.cancel_device(0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(10).unwrap().1.device, 1);
    }
}
