//! Dual 8259A programmable interrupt controller.
//!
//! The platform PIC pair routes 16 interrupt lines to the CPU. The same
//! model type is reused by the VMM as its *virtual* interrupt
//! controller (Section 7): masking, acknowledging and unmasking at the
//! virtual PIC is what produces the port-I/O exits that dominate
//! Table 2's EPT column.
//!
//! The model implements the usual operating subset: edge-triggered
//! requests, the IMR, non-specific EOI, ICW1/ICW2 initialization for
//! the vector offsets, and master/slave cascading on line 2.

/// One 8259 chip.
#[derive(Clone, Debug)]
struct Chip {
    /// Interrupt request register (pending lines).
    irr: u8,
    /// In-service register.
    isr: u8,
    /// Interrupt mask register (1 = masked).
    imr: u8,
    /// Vector offset programmed by ICW2.
    offset: u8,
    /// Initialization state machine: number of ICWs still expected.
    init_state: u8,
}

impl Chip {
    fn new(offset: u8) -> Chip {
        Chip {
            irr: 0,
            isr: 0,
            imr: 0xff,
            offset,
            init_state: 0,
        }
    }

    /// Highest-priority pending, unmasked line, honouring in-service
    /// priority (a line in service blocks itself and everything below).
    fn best(&self) -> Option<u8> {
        let ready = self.irr & !self.imr;
        for l in 0..8 {
            if self.isr & (1 << l) != 0 {
                return None;
            }
            if ready & (1 << l) != 0 {
                return Some(l);
            }
        }
        None
    }

    fn ack(&mut self, line: u8) {
        self.irr &= !(1 << line);
        self.isr |= 1 << line;
    }

    fn eoi(&mut self) {
        // Non-specific EOI: clear the highest-priority in-service bit.
        for l in 0..8 {
            if self.isr & (1 << l) != 0 {
                self.isr &= !(1 << l);
                return;
            }
        }
    }

    fn command(&mut self, val: u8) {
        if val & 0x10 != 0 {
            // ICW1: begin initialization; expect ICW2..ICW4.
            self.init_state = 3;
            self.imr = 0;
            self.isr = 0;
            self.irr = 0;
        } else if val & 0x20 != 0 {
            self.eoi();
        }
    }

    fn data_write(&mut self, val: u8) {
        match self.init_state {
            3 => {
                self.offset = val & 0xf8;
                self.init_state = 2;
            }
            2 => self.init_state = 1, // ICW3 (cascade wiring) ignored
            1 => self.init_state = 0, // ICW4 ignored
            _ => self.imr = val,      // OCW1
        }
    }

    fn data_read(&self) -> u8 {
        self.imr
    }
}

/// The master/slave 8259 pair (lines 0–7 master, 8–15 slave cascaded
/// on master line 2).
#[derive(Clone, Debug)]
pub struct DualPic {
    master: Chip,
    slave: Chip,
    /// Level state of the 16 input lines (for edge detection).
    lines: u16,
}

/// Master PIC command port.
pub const MASTER_CMD: u16 = 0x20;
/// Master PIC data port.
pub const MASTER_DATA: u16 = 0x21;
/// Slave PIC command port.
pub const SLAVE_CMD: u16 = 0xa0;
/// Slave PIC data port.
pub const SLAVE_DATA: u16 = 0xa1;

impl Default for DualPic {
    fn default() -> Self {
        Self::new()
    }
}

impl DualPic {
    /// Creates the pair with the conventional remapped offsets 0x20 /
    /// 0x28 and all lines masked.
    pub fn new() -> DualPic {
        DualPic {
            master: Chip::new(0x20),
            slave: Chip::new(0x28),
            lines: 0,
        }
    }

    /// `true` if `port` belongs to the PIC pair.
    pub fn owns_port(port: u16) -> bool {
        matches!(port, MASTER_CMD | MASTER_DATA | SLAVE_CMD | SLAVE_DATA)
    }

    /// Drives interrupt line `line` (0–15) to `level`; a rising edge
    /// latches a request.
    pub fn set_line(&mut self, line: u8, level: bool) {
        let bit = 1u16 << line;
        let was = self.lines & bit != 0;
        if level && !was {
            if line < 8 {
                self.master.irr |= 1 << line;
            } else {
                self.slave.irr |= 1 << (line - 8);
            }
        }
        if level {
            self.lines |= bit;
        } else {
            self.lines &= !bit;
        }
    }

    /// Pulses a line (edge-triggered request).
    pub fn pulse(&mut self, line: u8) {
        self.set_line(line, true);
        self.set_line(line, false);
    }

    /// Master arbitration with the slave's INT output mirrored onto
    /// line 2: the winning master line, honouring IMR and in-service
    /// priority. A pending slave request only wins if line 2 is the
    /// master's highest-priority ready line.
    fn master_best(&self) -> Option<u8> {
        let cascade = if self.slave.best().is_some() {
            1 << 2
        } else {
            0
        };
        let ready = (self.master.irr | cascade) & !self.master.imr;
        for l in 0..8 {
            if self.master.isr & (1 << l) != 0 {
                return None;
            }
            if ready & (1 << l) != 0 {
                return Some(l);
            }
        }
        None
    }

    /// `true` if any unmasked interrupt is pending (the INTR pin).
    pub fn intr(&self) -> bool {
        self.master_best()
            .is_some_and(|l| l != 2 || self.slave.best().is_some())
    }

    /// CPU interrupt acknowledge: returns the vector of the
    /// highest-priority pending interrupt and moves it in-service.
    pub fn ack(&mut self) -> Option<u8> {
        let l = self.master_best()?;
        if l == 2 {
            // Slave interrupts arrive through master line 2.
            let sl = self.slave.best()?;
            self.slave.ack(sl);
            self.master.irr |= 1 << 2;
            self.master.ack(2);
            return Some(self.slave.offset + sl);
        }
        self.master.ack(l);
        Some(self.master.offset + l)
    }

    /// Port read (CPU or VMM access).
    pub fn io_read(&mut self, port: u16) -> u8 {
        match port {
            MASTER_CMD => self.master.irr,
            MASTER_DATA => self.master.data_read(),
            SLAVE_CMD => self.slave.irr,
            SLAVE_DATA => self.slave.data_read(),
            _ => 0,
        }
    }

    /// Port write (CPU or VMM access).
    pub fn io_write(&mut self, port: u16, val: u8) {
        match port {
            MASTER_CMD => self.master.command(val),
            MASTER_DATA => self.master.data_write(val),
            SLAVE_CMD => self.slave.command(val),
            SLAVE_DATA => self.slave.data_write(val),
            _ => {}
        }
    }

    /// The current interrupt mask as a 16-bit word (diagnostics).
    pub fn mask(&self) -> u16 {
        self.master.imr as u16 | (self.slave.imr as u16) << 8
    }

    /// Serializes the full controller state (both chips plus the line
    /// levels) into [`DualPic::STATE_LEN`] bytes. Together with
    /// [`DualPic::import_state`] this lets a supervisor checkpoint a
    /// virtual PIC without the model exposing its registers.
    pub fn export_state(&self) -> [u8; Self::STATE_LEN] {
        [
            self.master.irr,
            self.master.isr,
            self.master.imr,
            self.master.offset,
            self.master.init_state,
            self.slave.irr,
            self.slave.isr,
            self.slave.imr,
            self.slave.offset,
            self.slave.init_state,
            (self.lines & 0xff) as u8,
            (self.lines >> 8) as u8,
        ]
    }

    /// Restores state produced by [`DualPic::export_state`].
    pub fn import_state(&mut self, s: &[u8; Self::STATE_LEN]) {
        self.master.irr = s[0];
        self.master.isr = s[1];
        self.master.imr = s[2];
        self.master.offset = s[3];
        self.master.init_state = s[4];
        self.slave.irr = s[5];
        self.slave.isr = s[6];
        self.slave.imr = s[7];
        self.slave.offset = s[8];
        self.slave.init_state = s[9];
        self.lines = s[10] as u16 | (s[11] as u16) << 8;
    }

    /// Size of the serialized state from [`DualPic::export_state`].
    pub const STATE_LEN: usize = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unmasked() -> DualPic {
        let mut p = DualPic::new();
        p.io_write(MASTER_DATA, 0x00);
        p.io_write(SLAVE_DATA, 0x00);
        p
    }

    #[test]
    fn masked_by_default() {
        let mut p = DualPic::new();
        p.pulse(0);
        assert!(!p.intr());
    }

    #[test]
    fn ack_returns_offset_vector() {
        let mut p = unmasked();
        p.pulse(0);
        assert!(p.intr());
        assert_eq!(p.ack(), Some(0x20));
        assert!(!p.intr(), "in-service until EOI");
    }

    #[test]
    fn priority_order() {
        let mut p = unmasked();
        p.pulse(4);
        p.pulse(1);
        assert_eq!(p.ack(), Some(0x21), "line 1 beats line 4");
        p.io_write(MASTER_CMD, 0x20); // EOI
        assert_eq!(p.ack(), Some(0x24));
    }

    #[test]
    fn eoi_reenables_lower_priority() {
        let mut p = unmasked();
        p.pulse(3);
        assert_eq!(p.ack(), Some(0x23));
        p.pulse(5);
        assert!(!p.intr(), "lower priority blocked while 3 in service");
        p.io_write(MASTER_CMD, 0x20);
        assert!(p.intr());
        assert_eq!(p.ack(), Some(0x25));
    }

    #[test]
    fn imr_masks_line() {
        let mut p = unmasked();
        p.io_write(MASTER_DATA, 1 << 4);
        p.pulse(4);
        assert!(!p.intr());
        p.io_write(MASTER_DATA, 0);
        assert!(p.intr(), "request latched while masked");
    }

    #[test]
    fn slave_cascade() {
        let mut p = unmasked();
        p.pulse(11);
        assert!(p.intr());
        assert_eq!(p.ack(), Some(0x28 + 3));
        p.io_write(SLAVE_CMD, 0x20);
        p.io_write(MASTER_CMD, 0x20);
        assert!(!p.intr());
    }

    #[test]
    fn icw_reprogram_offset() {
        let mut p = DualPic::new();
        p.io_write(MASTER_CMD, 0x11); // ICW1
        p.io_write(MASTER_DATA, 0x40); // ICW2: offset 0x40
        p.io_write(MASTER_DATA, 0x04); // ICW3
        p.io_write(MASTER_DATA, 0x01); // ICW4
        p.io_write(MASTER_DATA, 0x00); // OCW1: unmask all
        p.pulse(2 + 1);
        assert_eq!(p.ack(), Some(0x43));
    }

    #[test]
    fn export_import_round_trips() {
        let mut p = unmasked();
        p.pulse(11);
        p.pulse(1);
        assert_eq!(p.ack(), Some(0x21));
        p.set_line(6, true);
        let snap = p.export_state();
        let mut q = DualPic::new();
        q.import_state(&snap);
        assert_eq!(q.export_state(), snap);
        assert_eq!(q.mask(), p.mask());
        assert_eq!(q.intr(), p.intr());
        assert_eq!(q.ack(), p.ack(), "restored PIC acks the same vector");
    }

    #[test]
    fn edge_triggered_no_retrigger_on_level() {
        let mut p = unmasked();
        p.set_line(6, true);
        assert_eq!(p.ack(), Some(0x26));
        p.io_write(MASTER_CMD, 0x20);
        // Line still high: no new edge, no new request.
        assert!(!p.intr());
        p.set_line(6, false);
        p.set_line(6, true);
        assert!(p.intr());
    }
}
