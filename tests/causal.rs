//! Cross-PD causal request tracing acceptance tests: a batched PV
//! disk request reconstructs as one complete guest→VMM→disk-server
//! span tree whose per-layer critical-path attribution sums exactly to
//! the end-to-end latency; span trees are byte-identical across
//! same-seed runs; a trace context survives a VMM microreboot (the
//! resubmitted request completes under its original id); context
//! allocation never perturbs the simulation; and a VMM kill produces a
//! deterministic flight-recorder postmortem.

use nova_core::kernel::VMM_CRASH_CODE;
use nova_core::RunOutcome;
use nova_guest::pvdiskload::{self, PvDiskLoadParams};
use nova_trace::{cat, causal, chrome, flight, Kind, Tracer};
use nova_user::root::RootPm;
use nova_vmm::{GuestImage, LaunchOptions, System, Vmm, VmmConfig};

const BLOCK: u32 = 4096;
const BATCH: u32 = 8;
const REQUESTS: u32 = 32;
const BUDGET: u64 = 200_000_000_000;
/// Tight checkpoint cadence so a checkpoint exists well before the
/// workload finishes.
const CKPT_PERIOD: u64 = 500_000;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

fn pv_config() -> VmmConfig {
    let prog = pvdiskload::build(PvDiskLoadParams {
        requests: REQUESTS,
        block_bytes: BLOCK,
        batch: BATCH,
    });
    let mut cfg = VmmConfig::full_virt(image(prog), 4096);
    cfg.pv_disk = true;
    cfg
}

/// Swaps in a large always-on tracer, carrying over the context
/// counter and any flight recorders registered at install time.
fn trace_on(sys: &mut System) {
    let cpus = sys.k.machine.cpus.len().max(1);
    let mut fresh = Tracer::new(cpus, 1 << 21, cat::ALL);
    fresh.carry_over(&sys.k.machine.bus.trace);
    sys.k.machine.bus.trace = fresh;
}

/// Runs the standard (unsupervised) PV workload under full tracing.
fn traced_pv_run() -> System {
    let mut sys = System::build(LaunchOptions::standard(pv_config()));
    trace_on(&mut sys);
    assert_eq!(sys.run(Some(BUDGET)), RunOutcome::Shutdown(0));
    assert_eq!(sys.k.machine.tracer().dropped(), 0, "ring never wrapped");
    sys
}

/// The Issue-8 acceptance criterion: every batched PV disk request
/// reconstructs as a complete span tree that crosses from the VMM's
/// domain into the disk server's, contains the driver lifecycle and
/// the hardware I/O window, and whose per-layer attribution sums
/// exactly to the end-to-end span.
#[test]
fn pv_request_trees_are_complete_across_domains() {
    let sys = traced_pv_run();
    let events = sys.k.machine.tracer().events();
    let trees: Vec<_> = causal::request_trees(&events)
        .into_iter()
        .filter(|t| t.class == Kind::PvRequest)
        .collect();
    assert_eq!(
        trees.len(),
        REQUESTS as usize,
        "one request tree per PV descriptor"
    );
    for t in &trees {
        assert!(
            t.pds.len() >= 2,
            "ctx {} never left the VMM's domain: pds {:?}",
            t.ctx,
            t.pds
        );
        let root = t.roots.first().expect("root span");
        assert_eq!(root.kind, Kind::PvRequest);
        let sum: u64 = t.layers.iter().sum();
        assert_eq!(
            sum,
            t.end_to_end(),
            "ctx {}: layer attribution must sum to the end-to-end span",
            t.ctx
        );
        for kind in [
            Kind::DiskAccept,
            Kind::DiskIssue,
            Kind::DiskComplete,
            Kind::HwIo,
        ] {
            assert!(
                contains(&t.roots, kind),
                "ctx {} tree is missing {kind:?}",
                t.ctx
            );
        }
    }
    // The aggregate query agrees with the per-tree sums, and the
    // latency histogram sees the class.
    let (layers, n) = causal::critical_path_by_layer(&events, Kind::PvRequest);
    assert_eq!(n, REQUESTS as u64);
    let per_tree: u64 = trees.iter().map(|t| t.end_to_end()).sum();
    assert_eq!(layers.iter().sum::<u64>(), per_tree);
    let stats = causal::latency_by_class(&events);
    let s = stats.get(&Kind::PvRequest).expect("pv class");
    assert_eq!(s.count, REQUESTS as u64);
    assert!(s.p50 > 0 && s.p50 <= s.p90 && s.p90 <= s.p99);
}

fn contains(nodes: &[causal::SpanNode], kind: Kind) -> bool {
    nodes
        .iter()
        .any(|n| n.kind == kind || contains(&n.children, kind))
}

/// Same seed, same span trees — the determinism contract extended
/// from raw events to the stitched causal structures, and on through
/// the full Chrome export (events + flow arrows + counters).
#[test]
fn same_seed_builds_identical_span_trees() {
    let a = traced_pv_run();
    let b = traced_pv_run();
    let ta = causal::request_trees(&a.k.machine.tracer().events());
    let tb = causal::request_trees(&b.k.machine.tracer().events());
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "same seed, same trees");
    let ja = chrome::export_full(a.k.machine.tracer());
    let jb = chrome::export_full(b.k.machine.tracer());
    assert_eq!(ja, jb, "same seed, same full export, byte for byte");
    // Cross-PD requests draw flow arrows; counters are exported.
    assert!(ja.contains("\"cat\":\"flow\""));
    assert!(ja.contains("\"ph\":\"C\""));
}

/// The microrebootable PV system under test.
fn microreboot_system() -> System {
    let mut opts = LaunchOptions::microrebootable(pv_config());
    opts.microreboot = Some(CKPT_PERIOD);
    System::build(opts)
}

fn pv_completions(sys: &mut System) -> u64 {
    let (vmm, _) = sys.microreboot_vmm().expect("supervised vmm");
    sys.k
        .component_mut::<Vmm>(vmm)
        .map(|v| v.dev().pvdisk.completions)
        .unwrap_or(0)
}

fn run_until(sys: &mut System, mut done: impl FnMut(&mut System) -> bool) {
    loop {
        let out = sys.run(Some(100_000));
        assert_ne!(out, RunOutcome::Shutdown(0), "guest finished prematurely");
        if done(sys) {
            return;
        }
    }
}

fn has_checkpoint(sys: &mut System) -> bool {
    let root = sys.root;
    let slot = sys.microreboot.expect("microreboot enabled");
    let rp = sys.k.component_mut::<RootPm>(root).expect("root pm");
    rp.vmm_supervision[slot]
        .as_ref()
        .is_some_and(|s| s.last_checkpoint.is_some())
}

/// Kills the VMM mid-workload and runs to completion; returns the
/// finished system and the crash cycle.
fn crash_run() -> (System, u64) {
    let mut sys = microreboot_system();
    trace_on(&mut sys);
    run_until(&mut sys, |s| pv_completions(s) >= 8 && has_checkpoint(s));
    let (_, vmm_pd) = sys.microreboot_vmm().expect("supervised vmm");
    let crash_at = sys.k.now();
    sys.k.pd_fault(vmm_pd, VMM_CRASH_CODE);
    let out = sys.run(Some(BUDGET));
    assert_eq!(out, RunOutcome::Shutdown(0), "guest completed after crash");
    assert_eq!(sys.k.counters.vmm_restarts, 1);
    (sys, crash_at)
}

/// A trace context allocated before the crash survives the VMM
/// microreboot: the checkpoint serializes each pending request's
/// context, the restore resubmits under it, and the request's tree
/// straddles the crash — events on both sides of the kill, spanning
/// both VMM incarnations' domains and the disk server's.
#[test]
fn trace_context_survives_vmm_microreboot() {
    let (sys, crash_at) = crash_run();
    let events = sys.k.machine.tracer().events();
    let straddling: Vec<_> = causal::request_trees(&events)
        .into_iter()
        .filter(|t| {
            t.class == Kind::PvRequest
                && t.first_cycle < crash_at
                && t.last_cycle > crash_at
                && t.pds.len() >= 2
        })
        .collect();
    assert!(
        !straddling.is_empty(),
        "no request context crossed the microreboot"
    );
    for t in &straddling {
        assert_eq!(t.layers.iter().sum::<u64>(), t.end_to_end());
    }
    // The revive sequence itself exports: checkpoint/restore events
    // and the recovery counters all appear in the full Chrome export.
    let js = chrome::export_full(sys.k.machine.tracer());
    assert!(js.contains("\"name\":\"checkpoint\""));
    assert!(js.contains("\"name\":\"restore\""));
    assert!(js.contains("\"name\":\"vmm_restarts\""));
    assert!(js.contains("\"name\":\"restore_latency_cycles\""));
}

/// Context allocation is always on but free: a fully traced run and a
/// tracing-off run reach the same final clock and the same per-reason
/// exit counts (the Fig. 6 columns), so the observability layer can
/// never perturb what it measures.
#[test]
fn context_plumbing_does_not_perturb_execution() {
    let traced = traced_pv_run();
    let untraced = {
        let mut sys = System::build(LaunchOptions::standard(pv_config()));
        assert_eq!(sys.run(Some(BUDGET)), RunOutcome::Shutdown(0));
        assert!(sys.k.machine.tracer().events().is_empty(), "off by default");
        sys
    };
    assert_eq!(traced.k.machine.clock, untraced.k.machine.clock);
    assert_eq!(traced.k.counters.exits, untraced.k.counters.exits);
    assert_eq!(
        traced.k.counters.total_exits(),
        untraced.k.counters.total_exits()
    );
    assert_eq!(traced.k.machine.marks(), untraced.k.machine.marks());
}

/// A VMM kill serializes a postmortem dump: correct header, the
/// watchdog trigger, the crash fault code recovered from the black
/// box, a checkpoint header, and a non-empty flight tail —
/// byte-identical across two same-seed runs (the CI gate).
#[test]
fn vmm_kill_postmortem_is_deterministic_and_structured() {
    let postmortem = |_: ()| -> Vec<u8> {
        let (mut sys, _) = crash_run();
        let root = sys.root;
        sys.k
            .component_mut::<RootPm>(root)
            .expect("root pm")
            .last_postmortem
            .clone()
            .expect("crash produced a postmortem")
    };
    let a = postmortem(());
    let b = postmortem(());
    assert_eq!(a, b, "same seed, same postmortem, byte for byte");

    assert_eq!(&a[..8], flight::DUMP_MAGIC);
    let field_u32 = |at: usize| u32::from_le_bytes(a[at..at + 4].try_into().unwrap());
    let field_u64 = |at: usize| u64::from_le_bytes(a[at..at + 8].try_into().unwrap());
    assert_eq!(field_u32(8), flight::DUMP_VERSION);
    assert_eq!(a[14], flight::Trigger::Watchdog.code());
    assert_eq!(a[15], 1, "checkpoint header present");
    assert_eq!(field_u64(16), VMM_CRASH_CODE, "reason is the fault code");
    assert!(field_u64(32) >= 1, "checkpoint sequence");
    assert!(field_u64(40) > 0, "checkpoint size");
    let nevents = field_u32(48);
    assert!(nevents > 0, "flight tail is not empty");
    // The tail's last mirrored event is the domain's death record.
    let last = 52 + (nevents as usize - 1) * 31;
    let kind = u16::from_le_bytes(a[last + 28..last + 30].try_into().unwrap());
    assert_eq!(kind, Kind::PdDeath as u16, "black box ends at the death");
}
