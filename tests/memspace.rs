//! Memory fast-path acceptance tests: the radix `MemSpace` must be
//! observationally identical to the legacy `BTreeMap` backend under
//! random map/unmap/delegate/revoke sequences, the per-PD translation
//! cache must never serve a stale entry through any kernel mutation
//! path, page-crossing u32/u64 accessors must agree with byte-wise
//! composition on both backends, and a traced end-to-end run must
//! export a byte-identical trace regardless of backend — the
//! behaviour-invariance contract of the wall-clock optimization.

use nova_core::obj::{MemMapping, MemRights, MemSpace, PdId};
use nova_core::{Hypercall, Kernel, KernelConfig, RunOutcome};
use nova_guest::diskload::{self, DiskLoadParams};
use nova_hw::machine::{Machine, MachineConfig};
use nova_trace::{cat, chrome, Tracer};
use nova_user::RootPm;
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

/// Deterministic xorshift64* generator (same idiom as `tests/props.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_rights(rng: &mut Rng) -> MemRights {
    match rng.below(3) {
        0 => MemRights::RW_DMA,
        1 => MemRights::RW,
        _ => MemRights::RO,
    }
}

/// Page numbers drawn from the interesting regions: within one leaf,
/// across the leaf span, straddling the directory/overflow boundary
/// (2^24), and deep in the overflow map.
fn random_page(rng: &mut Rng) -> u64 {
    match rng.below(4) {
        0 => rng.below(512),
        1 => rng.below(1 << 15),
        2 => (1 << 24) - 8 + rng.below(16),
        _ => (1 << 24) + rng.below(1 << 10),
    }
}

/// Property: after any sequence of maps (delegations install mappings
/// with masked rights — same entry point) and unmaps (revocations),
/// the radix and legacy backends agree on lookup, translate, unmap
/// results, count, and full page-ordered iteration.
#[test]
fn radix_equals_legacy_under_random_sequences() {
    for seed in [0x11, 0x22, 0x33, 0x44] {
        let mut rng = Rng::new(seed);
        let mut radix = MemSpace::default();
        let mut legacy = MemSpace::legacy();
        for _ in 0..4000 {
            let page = random_page(&mut rng);
            if rng.below(100) < 55 {
                let m = MemMapping {
                    hpa: rng.next() & 0xffff_ffff_f000,
                    rights: random_rights(&mut rng),
                };
                radix.map(page, m);
                legacy.map(page, m);
            } else {
                assert_eq!(radix.unmap(page), legacy.unmap(page), "unmap({page:#x})");
            }
            // Probe a (mostly unrelated) page both cold and, for the
            // radix side, through its translation cache.
            let probe = random_page(&mut rng);
            assert_eq!(radix.lookup(probe), legacy.lookup(probe));
            assert_eq!(radix.lookup(probe), legacy.lookup(probe), "cached");
            let addr = (probe << 12) | rng.below(4096);
            assert_eq!(radix.translate(addr), legacy.translate(addr));
        }
        assert_eq!(radix.count(), legacy.count());
        let a: Vec<(u64, MemMapping)> = radix.iter().collect();
        let b: Vec<(u64, MemMapping)> = legacy.iter().collect();
        assert_eq!(a, b, "iteration order and contents");
    }
}

fn kernel_with_root(legacy: bool) -> (Kernel, nova_core::CompCtx) {
    let m = Machine::new(MachineConfig::core_i7(64 << 20));
    let cfg = KernelConfig {
        legacy_memspace: legacy,
        ..KernelConfig::default()
    };
    let mut k = Kernel::new(m, cfg);
    let (rc, re) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
    k.start_component(rc, re);
    let ctx = k.component_mut::<RootPm>(rc).unwrap().ctx.unwrap();
    (k, ctx)
}

/// The same randomized delegate/revoke hypercall script against a
/// radix kernel and a legacy kernel leaves every protection domain's
/// memory space with identical contents, and identical counters.
#[test]
fn kernel_delegation_script_identical_across_backends() {
    let run = |legacy: bool| {
        let (mut k, ctx) = kernel_with_root(legacy);
        assert_eq!(k.obj.pd(k.root_pd).mem.is_legacy(), legacy);
        k.hypercall(
            ctx,
            Hypercall::CreatePd {
                name: "child".into(),
                vm: None,
                dst: 0x30,
            },
        )
        .unwrap();
        let mut rng = Rng::new(0xdead_beef);
        for _ in 0..300 {
            let base = rng.below(2000);
            let count = 1 + rng.below(8);
            if rng.below(100) < 60 {
                let _ = k.hypercall(
                    ctx,
                    Hypercall::DelegateMem {
                        dst_pd: 0x30,
                        base,
                        count,
                        rights: random_rights(&mut rng),
                        hot: base,
                    },
                );
            } else {
                let _ = k.hypercall(
                    ctx,
                    Hypercall::RevokeMem {
                        base,
                        count,
                        include_self: false,
                    },
                );
            }
        }
        let child: Vec<(u64, MemMapping)> = k.obj.pd(PdId(1)).mem.iter().collect();
        let root: Vec<(u64, MemMapping)> = k.obj.pd(k.root_pd).mem.iter().collect();
        (child, root, format!("{:?}", k.counters))
    };
    let (child_r, root_r, counters_r) = run(false);
    let (child_l, root_l, counters_l) = run(true);
    assert!(!child_r.is_empty(), "script delegated something");
    assert_eq!(child_r, child_l, "child PD mappings");
    assert_eq!(root_r, root_l, "root PD mappings");
    assert_eq!(counters_r, counters_l, "kernel counters");
}

/// The translation cache fronting the radix backend must never serve
/// a stale entry after unmap, revoke, or PD destruction — exercised
/// through the kernel's own mutation paths, with reads in between to
/// keep the cache hot.
#[test]
fn translation_cache_invalidated_by_kernel_paths() {
    let (mut k, ctx) = kernel_with_root(false);
    k.hypercall(
        ctx,
        Hypercall::CreatePd {
            name: "victim".into(),
            vm: None,
            dst: 0x30,
        },
    )
    .unwrap();
    k.hypercall(
        ctx,
        Hypercall::DelegateMem {
            dst_pd: 0x30,
            base: 0x200,
            count: 4,
            rights: MemRights::RW,
            hot: 0x200,
        },
    )
    .unwrap();
    let child = PdId(1);
    // Warm the child's translation cache.
    for p in 0x200..0x204u64 {
        assert!(k.obj.pd(child).mem.translate(p << 12).is_some());
    }
    // Revoke from the root: the child's mapping must vanish, cache
    // included.
    k.hypercall(
        ctx,
        Hypercall::RevokeMem {
            base: 0x200,
            count: 1,
            include_self: false,
        },
    )
    .unwrap();
    assert_eq!(
        k.obj.pd(child).mem.translate(0x200 << 12),
        None,
        "stale hit"
    );
    assert!(k.obj.pd(child).mem.translate(0x201 << 12).is_some());
    // Re-delegate the same page at different rights: the cache must
    // yield the fresh mapping.
    k.hypercall(
        ctx,
        Hypercall::DelegateMem {
            dst_pd: 0x30,
            base: 0x200,
            count: 1,
            rights: MemRights::RO,
            hot: 0x200,
        },
    )
    .unwrap();
    let m = k.obj.pd(child).mem.lookup(0x200).expect("remapped");
    assert!(!m.rights.write, "fresh rights, not the cached RW entry");
    // Destroy the PD: every cached translation dies with it.
    k.hypercall(ctx, Hypercall::DestroyPd { pd: 0x30 }).unwrap();
    assert_eq!(k.obj.pd(child).mem.count(), 0);
    for p in 0x200..0x204u64 {
        assert_eq!(k.obj.pd(child).mem.translate(p << 12), None);
    }
}

/// Page-crossing u32/u64 reads and writes agree with byte-wise
/// composition, on both backends, including the partially-unmapped
/// case (the regression the direct loads must not introduce).
#[test]
fn page_crossing_u32_u64_reads() {
    let mut results = Vec::new();
    for legacy in [false, true] {
        let (mut k, ctx) = kernel_with_root(legacy);
        // A recognizable pattern across the 0x5000 page boundary.
        let pattern: Vec<u8> = (0u8..16).map(|i| 0xa0 + i).collect();
        assert!(k.mem_write(ctx, 0x5000 - 8, &pattern));
        for off in 0..8u64 {
            let addr = 0x5000 - 8 + off;
            let v32 = k.mem_read_u32(ctx, addr).unwrap();
            let v64 = k.mem_read_u64(ctx, addr).unwrap();
            let bytes = k.mem_read(ctx, addr, 8).unwrap();
            let e32 = u32::from_le_bytes(bytes[..4].try_into().unwrap());
            let e64 = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            assert_eq!(v32, e32, "u32 at boundary-{off}");
            assert_eq!(v64, e64, "u64 at boundary-{off}");
            results.push((legacy, off, v32, v64));
        }
        // A page-crossing write lands byte-exactly.
        assert!(k.mem_write_u32(ctx, 0x6000 - 2, 0x1122_3344));
        assert_eq!(
            k.mem_read(ctx, 0x6000 - 2, 4).unwrap(),
            [0x44, 0x33, 0x22, 0x11]
        );
        // Crossing into an unmapped page fails on both backends: the
        // child only holds one page.
        k.hypercall(
            ctx,
            Hypercall::CreatePd {
                name: "onepage".into(),
                vm: None,
                dst: 0x30,
            },
        )
        .unwrap();
        k.hypercall(
            ctx,
            Hypercall::DelegateMem {
                dst_pd: 0x30,
                base: 0x100,
                count: 1,
                rights: MemRights::RW,
                hot: 0x100,
            },
        )
        .unwrap();
        let child_ctx = nova_core::CompCtx {
            pd: PdId(1),
            ec: ctx.ec,
            comp: ctx.comp,
        };
        assert_eq!(k.mem_read_u32(child_ctx, (0x100 << 12) + 0xffe), None);
        assert_eq!(k.mem_read_u64(child_ctx, (0x100 << 12) + 0xffa), None);
        assert!(k.mem_read_u32(child_ctx, (0x100 << 12) + 0xffc).is_some());
    }
    // Both backends returned identical values at every offset.
    let (radix, legacy): (Vec<_>, Vec<_>) = results.iter().partition(|r| !r.0);
    let strip = |v: &Vec<&(bool, u64, u32, u64)>| -> Vec<(u64, u32, u64)> {
        v.iter().map(|r| (r.1, r.2, r.3)).collect()
    };
    assert_eq!(strip(&radix), strip(&legacy));
}

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

fn traced_run(legacy: bool) -> System {
    let p = DiskLoadParams {
        requests: 8,
        block_bytes: 4096,
    };
    let mut opts = LaunchOptions::supervised(VmmConfig::full_virt(image(diskload::build(p)), 2048));
    opts.machine.ram = 128 << 20;
    opts.kernel.legacy_memspace = legacy;
    let mut sys = System::build(opts);
    let cpus = sys.k.machine.cpus.len().max(1);
    sys.k.machine.bus.trace = Tracer::new(cpus, 1 << 21, cat::ALL);
    let out = sys.run(Some(60_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(0), "run finishes cleanly");
    assert_eq!(sys.k.machine.tracer().dropped(), 0);
    sys
}

/// The whole point of the fast path: same seed, same workload, same
/// trace — byte for byte — whether the kernel runs radix or legacy
/// memory spaces. Wall-clock differs; simulated behaviour must not.
#[test]
fn trace_export_byte_identical_across_backends() {
    let radix = traced_run(false);
    let legacy = traced_run(true);
    assert!(!radix.k.machine.tracer().events().is_empty());
    let ja = chrome::export(radix.k.machine.tracer());
    let jb = chrome::export(legacy.k.machine.tracer());
    assert_eq!(ja, jb, "backends diverged in simulated behaviour");
    assert_eq!(
        format!("{:?}", radix.k.counters),
        format!("{:?}", legacy.k.counters),
        "counters diverged"
    );
}
