//! Tracing acceptance tests: the chaos workload run under full
//! tracing must (a) export a byte-identical Chrome trace for the same
//! seed, and (b) agree exactly with the kernel's aggregate `Counters`
//! — every trace-derived count and cycle total is the same number the
//! counters report, so the §8.5 breakdown reproduced from the trace is
//! exact, not approximate.

use nova_core::RunOutcome;
use nova_guest::diskload::{self, DiskLoadParams};
use nova_hw::fault::{FaultKind, FaultPlan};
use nova_trace::{cat, chrome, query, Kind, Tracer};
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

const TRACE_SEED: u64 = 0x5eed_c0ff_ee01;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// The chaos workload of `tests/chaos.rs`, with tracing on: a
/// supervised disk-server stack under a seeded five-kind fault plan.
/// Returns the finished system and a counter snapshot taken at the
/// moment tracing was enabled — boot (`System::build`) runs hypercalls
/// and IPC before the tracer exists, so exact trace-vs-counter
/// comparisons must use the delta from this baseline.
fn traced_chaos_run() -> (System, nova_core::Counters) {
    let p = DiskLoadParams {
        requests: 12,
        block_bytes: 4096,
    };
    let mut opts = LaunchOptions::supervised(VmmConfig::full_virt(image(diskload::build(p)), 2048));
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);
    sys.k.machine.set_fault_plan(
        FaultPlan::seeded(TRACE_SEED)
            .with(FaultKind::AhciTaskFileError, 9000, 3)
            .with(FaultKind::AhciLostIrq, 9000, 3)
            .with(FaultKind::AhciSpuriousIrq, 9000, 3)
            .with(FaultKind::AhciStuckDma, 9000, 2)
            .with(FaultKind::IommuFault, 5000, 2),
    );
    // A generous ring so nothing is dropped and counts stay exact.
    let cpus = sys.k.machine.cpus.len().max(1);
    sys.k.machine.bus.trace = Tracer::new(cpus, 1 << 21, cat::ALL);
    let base = sys.k.counters.snapshot();
    let out = sys.run(Some(60_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(0), "traced run finishes cleanly");
    assert_eq!(sys.k.machine.tracer().dropped(), 0, "ring never wrapped");
    (sys, base)
}

/// Same seed, same workload: the exported Chrome trace is the same
/// byte string — the determinism contract, end to end through the
/// tracer and the exporter.
#[test]
fn same_seed_exports_byte_identical_trace() {
    let (a, _) = traced_chaos_run();
    let (b, _) = traced_chaos_run();
    let ja = chrome::export(a.k.machine.tracer());
    let jb = chrome::export(b.k.machine.tracer());
    assert!(!a.k.machine.tracer().events().is_empty());
    assert_eq!(ja, jb, "same seed, same trace, byte for byte");
    // Sanity: it is a Chrome trace document with real content.
    assert!(ja.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(ja.ends_with("]}"));
    assert!(ja.contains("\"name\":\"vm_exit\""));
    assert!(ja.contains("\"name\":\"fault_inject\""));
}

/// The trace agrees with `Counters` exactly: event counts per kind
/// and the four §8.5 cycle categories, derived purely from trace
/// events, equal the kernel's own accounting.
#[test]
fn trace_counts_and_cycles_match_counters_exactly() {
    let (sys, base) = traced_chaos_run();
    // Everything the counters accumulated since tracing went live —
    // the exact window the trace covers.
    let c = sys.k.counters.delta(&base);
    let events = sys.k.machine.tracer().events();

    // Exit counts: total and per reason index.
    let exits = query::events_of(&events, Kind::VmExit);
    assert_eq!(exits.len() as u64, c.total_exits());
    let by_reason = query::count_by_detail(&events, Kind::VmExit);
    for (idx, &n) in c.exits.iter().enumerate() {
        assert_eq!(
            by_reason.get(&(idx as u64)).copied().unwrap_or(0),
            n,
            "exit reason {idx}"
        );
    }

    // Event counters.
    assert_eq!(
        query::events_of(&events, Kind::Hypercall).len() as u64,
        c.hypercalls
    );
    assert_eq!(
        query::events_of(&events, Kind::VirqInject).len() as u64,
        c.injected_virq
    );
    assert_eq!(
        query::events_of(&events, Kind::VtlbFill).len() as u64,
        c.vtlb_fills
    );
    // IPC spans: one begin per successful portal entry.
    let ipc_begins = query::events_of(&events, Kind::IpcCall)
        .iter()
        .filter(|e| e.phase == nova_trace::Phase::Begin)
        .count() as u64;
    assert_eq!(ipc_begins, c.ipc_calls);

    // §8.5: the weighted cost events sum to the counters exactly —
    // the trace reproduces the transition/IPC/emulation breakdown
    // with zero error (well within the 1% acceptance bound).
    assert_eq!(
        query::span_cycles(&events, Kind::CostTransition),
        c.cycles_transition
    );
    assert_eq!(query::span_cycles(&events, Kind::CostIpc), c.cycles_ipc);
    assert_eq!(
        query::span_cycles(&events, Kind::CostEmulation),
        c.cycles_emulation
    );
    assert_eq!(
        query::span_cycles(&events, Kind::CostKernel),
        c.cycles_kernel
    );

    // Fault-injection events mirror the injector's own trace.
    let injected: u64 = sys.k.machine.faults().injected.iter().sum();
    assert_eq!(
        query::events_of(&events, Kind::FaultInject).len() as u64,
        injected
    );

    // The per-PD metrics registry agrees with the aggregate counters.
    let m = &sys.k.machine.tracer().metrics;
    assert_eq!(m.total_count("exit_cycles"), c.total_exits());
    assert_eq!(m.total_count("disk_service_cycles"), c.disk_ops);
}

/// Tracing off (the default) records nothing and costs nothing
/// observable: the run's final clock is identical with and without
/// tracing enabled.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let (traced, _) = traced_chaos_run();
    let untraced = {
        let p = DiskLoadParams {
            requests: 12,
            block_bytes: 4096,
        };
        let mut opts =
            LaunchOptions::supervised(VmmConfig::full_virt(image(diskload::build(p)), 2048));
        opts.machine.ram = 128 << 20;
        let mut sys = System::build(opts);
        sys.k.machine.set_fault_plan(
            FaultPlan::seeded(TRACE_SEED)
                .with(FaultKind::AhciTaskFileError, 9000, 3)
                .with(FaultKind::AhciLostIrq, 9000, 3)
                .with(FaultKind::AhciSpuriousIrq, 9000, 3)
                .with(FaultKind::AhciStuckDma, 9000, 2)
                .with(FaultKind::IommuFault, 5000, 2),
        );
        let out = sys.run(Some(60_000_000_000));
        assert_eq!(out, RunOutcome::Shutdown(0));
        assert!(sys.k.machine.tracer().events().is_empty(), "off by default");
        sys
    };
    assert_eq!(traced.k.machine.clock, untraced.k.machine.clock);
    assert_eq!(traced.k.machine.marks(), untraced.k.machine.marks());
    assert_eq!(
        traced.k.counters.total_exits(),
        untraced.k.counters.total_exits()
    );
}
