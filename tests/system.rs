//! Cross-crate integration tests: the full stack (microhypervisor,
//! root partition manager, disk server, VMM, guest OS) exercised
//! end-to-end.

use nova_core::RunOutcome;
use nova_guest::compile::{self, CompileParams};
use nova_guest::diskload::{self, DiskLoadParams};
use nova_guest::os::{build_os, OsParams};
use nova_guest::rt;
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};
use nova_x86::reg::Reg;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// The slowest tests in this file run only when `NOVA_SLOW_TESTS` is
/// set, keeping the default `cargo test` job inside its wall-clock
/// budget. CI runs an additional full sweep with the variable set.
fn slow_tests_enabled() -> bool {
    std::env::var_os("NOVA_SLOW_TESTS").is_some()
}

/// Returns `true` (and prints a note) when a slow test should be
/// skipped under the fast default configuration.
macro_rules! skip_unless_slow {
    () => {
        if !slow_tests_enabled() {
            eprintln!("skipped: slow test; set NOVA_SLOW_TESTS=1 to run");
            return;
        }
    };
}

#[test]
fn full_stack_guest_console_and_exit_code() {
    let prog = build_os(OsParams::minimal(), |a, _| {
        rt::emit_puts(a, "nova-rs integration\n");
        rt::emit_exit(a, 55);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(3_000_000_000)), RunOutcome::Shutdown(55));
    assert_eq!(sys.vmm().guest_console(), "nova-rs integration\n");
    assert_eq!(sys.vmm().guest_exit, Some(55));
}

#[test]
fn guest_cpuid_sees_virtualized_identity() {
    let prog = build_os(OsParams::minimal(), |a, _| {
        // CPUID leaf 1 -> report ECX (bit 5 = VMX) via the mark port.
        a.mov_ri(Reg::Eax, 1);
        a.cpuid();
        a.mov_rr(Reg::Eax, Reg::Ecx);
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    sys.run(Some(3_000_000_000));
    let marks = sys.k.machine.marks().to_vec();
    assert_eq!(marks.len(), 1);
    assert_eq!(
        marks[0].1 & nova_x86::cpuid::feature::VMX,
        0,
        "the VMM hides hardware virtualization from the guest"
    );
}

#[test]
fn disk_data_round_trips_through_all_layers() {
    // Guest reads LBA 777 through vAHCI -> IPC -> disk server -> real
    // controller -> DMA into guest memory.
    let p = DiskLoadParams {
        requests: 1,
        block_bytes: 4096,
    };
    let prog = diskload::build(p);
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(10_000_000_000)), RunOutcome::Shutdown(0));

    let host = 0x1000 * 4096 + rt::layout::DISK_BUF as u64;
    let got = sys.k.machine.mem.read_bytes(host, 512);
    let expect = sys.k.machine.ahci().sector(0);
    assert_eq!(got, expect, "payload identical through the whole stack");

    // The paper's Figure 4 flow left its fingerprints: IPC calls,
    // injected vIRQ, disk-server completion.
    assert!(sys.k.counters.ipc_calls > 0);
    assert!(sys.k.counters.injected_virq >= 1);
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.bytes, 4096);
}

#[test]
fn compile_workload_event_shape_under_ept() {
    skip_unless_slow!();
    let prog = compile::build(CompileParams::smoke());
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        8192,
    )));
    assert_eq!(sys.run(Some(30_000_000_000)), RunOutcome::Shutdown(0));
    let c = &sys.k.counters;
    // Table 2 EPT column shape: no paging exits at all.
    assert_eq!(c.exits_of(8), 0, "no #PF exits");
    assert_eq!(c.exits_of(5), 0, "no CR exits");
    assert_eq!(c.exits_of(4), 0, "no INVLPG exits");
    assert!(c.exits_of(6) > 0, "port I/O present");
    assert!(c.exits_of(7) > 0, "MMIO present (virtual disk)");
    assert!(c.injected_virq > 0);
    // Section 8.5: the IPC share of exit handling is a minority.
    let total = c.cycles_transition + c.cycles_ipc + c.cycles_emulation + c.cycles_kernel;
    assert!(
        (c.cycles_ipc as f64) < 0.4 * total as f64,
        "IPC share bounded (paper: 15%)"
    );
}

#[test]
fn relative_performance_sanity() {
    skip_unless_slow!();
    // A quick, smoke-scale version of Figure 5's ordering:
    // native <= direct-ish <= EPT <= vTLB runtimes.
    let p = CompileParams {
        disk_every: 0,
        timer_divisor: None,
        ..CompileParams::smoke()
    };
    let prog = compile::build(p);

    let native = nova_baseline::run_native_image(
        nova_hw::machine::MachineConfig::core_i7(96 << 20),
        &prog.bytes,
        prog.load_gpa,
        prog.entry,
        prog.stack,
        Some(30_000_000_000),
        |_| {},
    );
    assert!(matches!(native.stop, nova_hw::cpu::NativeStop::Shutdown(_)));

    let run = |paging| {
        let mut cfg = VmmConfig::full_virt(image(prog.clone()), 8192);
        cfg.paging = paging;
        let mut opts = LaunchOptions::standard(cfg);
        opts.with_disk = false;
        let mut sys = System::build(opts);
        assert_eq!(sys.run(Some(60_000_000_000)), RunOutcome::Shutdown(0));
        sys.k.machine.clock
    };
    let ept = run(nova_core::obj::VmPaging::Nested(
        nova_x86::paging::NestedFormat::Ept4Level,
    ));
    let vtlb = run(nova_core::obj::VmPaging::Shadow);

    assert!(native.cycles <= ept, "virtualization is not free");
    assert!(
        ept < vtlb,
        "nested paging beats shadow paging: {ept} vs {vtlb}"
    );
}

#[test]
fn mtd_full_costs_more_ipc() {
    skip_unless_slow!();
    let prog = compile::build(CompileParams::smoke());
    let run = |mtd_full| {
        let mut cfg = VmmConfig::full_virt(image(prog.clone()), 8192);
        cfg.mtd_full = mtd_full;
        let mut sys = System::build(LaunchOptions::standard(cfg));
        assert_eq!(sys.run(Some(30_000_000_000)), RunOutcome::Shutdown(0));
        sys.k.counters.cycles_ipc
    };
    let lean = run(false);
    let full = run(true);
    assert!(
        full > lean,
        "full-state transfer costs more VMREADs: {full} vs {lean}"
    );
}

/// Scheduling fairness between VMs (the Section 9 direction): two
/// guests with different time quanta share the CPU roughly in
/// proportion to their quanta under round-robin at equal priority.
#[test]
fn scheduler_shares_cpu_by_quantum() {
    // Each guest increments a counter forever.
    let spinner = || {
        build_os(OsParams::minimal(), |a, _| {
            let top = a.here_label();
            a.inc_m(nova_x86::MemRef::abs(0x6000));
            a.jmp(top);
        })
    };
    let mut cfg_a = VmmConfig::full_virt(image(spinner()), 1024);
    cfg_a.quantum = 3_000_000; // 3x the share of B
    let mut opts = LaunchOptions::standard(cfg_a);
    opts.with_disk = false;
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);
    let mut cfg_b = VmmConfig::full_virt(image(spinner()), 1024);
    cfg_b.quantum = 1_000_000;
    sys.add_vm(cfg_b);

    // A dozen round-robin rotations are plenty to establish the
    // ratio; the slow sweep runs the original long horizon.
    let budget = if slow_tests_enabled() {
        400_000_000
    } else {
        50_000_000
    };
    assert_eq!(sys.run(Some(budget)), RunOutcome::Budget);

    let a_count = sys.k.machine.mem.read_u32(0x1000 * 4096 + 0x6000) as f64;
    let b_base = (0x1000u64 + 1024 + 1).next_multiple_of(512);
    let b_count = sys.k.machine.mem.read_u32(b_base * 4096 + 0x6000) as f64;
    assert!(a_count > 0.0 && b_count > 0.0, "both guests made progress");
    let ratio = a_count / b_count;
    assert!(
        (2.0..=4.5).contains(&ratio),
        "3:1 quanta give roughly 3:1 progress, got {ratio:.2}"
    );
}

/// Priorities strictly dominate: a higher-priority VM that never
/// yields starves a lower-priority one (the scheduler dispatches the
/// highest-priority ready SC, Section 5.1).
#[test]
fn scheduler_priority_dominates() {
    let spinner = || {
        build_os(OsParams::minimal(), |a, _| {
            let top = a.here_label();
            a.inc_m(nova_x86::MemRef::abs(0x6000));
            a.jmp(top);
        })
    };
    let mut cfg_hi = VmmConfig::full_virt(image(spinner()), 1024);
    cfg_hi.vcpu_prio = 32;
    let mut opts = LaunchOptions::standard(cfg_hi);
    opts.with_disk = false;
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);
    let mut cfg_lo = VmmConfig::full_virt(image(spinner()), 1024);
    cfg_lo.vcpu_prio = 8;
    sys.add_vm(cfg_lo);

    let budget = if slow_tests_enabled() {
        100_000_000
    } else {
        30_000_000
    };
    assert_eq!(sys.run(Some(budget)), RunOutcome::Budget);
    let hi = sys.k.machine.mem.read_u32(0x1000 * 4096 + 0x6000);
    let b_base = (0x1000u64 + 1024 + 1).next_multiple_of(512);
    let lo = sys.k.machine.mem.read_u32(b_base * 4096 + 0x6000);
    assert!(hi > 0);
    assert_eq!(lo, 0, "lower priority never ran against a spinning high");
}

/// True multiprocessor virtualization (Section 7.5): a 2-vCPU guest
/// with each virtual CPU on its own physical processor; the TLB
/// shootdown flows across cores through recall + injection.
#[test]
fn mp_guest_on_two_physical_cpus() {
    skip_unless_slow!();
    let prog = nova_guest::mp::build(nova_guest::mp::MpParams { shootdowns: 2 });
    let mut cfg = VmmConfig::full_virt(image(prog), 4096);
    cfg.vcpus = 2;
    cfg.vcpu_cpus = vec![0, 1];
    let mut opts = LaunchOptions::standard(cfg);
    opts.with_disk = false;
    opts.machine.cpus = 2;
    let mut sys = System::build(opts);
    let out = sys.run(Some(60_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(0));
    let host_vars = 0x1000 * 4096 + rt::layout::VARS as u64;
    let acks = sys
        .k
        .machine
        .mem
        .read_u32(host_vars + rt::vars::SHOOT_ACK as u64);
    assert_eq!(acks, 2, "both shootdowns acknowledged across cores");
    // Both physical CPUs actually executed guest code.
    assert!(sys.k.machine.cpus[0].instret > 0);
    assert!(sys.k.machine.cpus[1].instret > 0);
}
