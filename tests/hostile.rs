//! Hostile-guest fuzz harness: deterministic Byzantine guests drive
//! every validated guest-input surface (PV disk ring, PV net ring,
//! vAHCI command structures, vTLB-walked page tables, emulator
//! instruction bytes) across a fixed seed sweep. The hypervisor must
//! never panic; every attack must end either in a structured
//! [`VmKill`] with the exact surface/reason exit code or in a
//! guest-visible error the VM survives to report. Sibling VMs must
//! keep making progress while a co-resident VM is being killed, and
//! the whole sweep is byte-reproducible per seed.
//!
//! The default sweep covers 13 seeds per surface (65 scenario runs);
//! set `NOVA_SLOW_TESTS=1` for the full 64-seed-per-surface sweep.

use nova_core::cap::{CapSel, Perms};
use nova_core::obj::{MemRights, VmPaging};
use nova_core::utcb::Utcb;
use nova_core::{CompCtx, Component, Hypercall, Kernel, KernelConfig, RunOutcome};
use nova_guest::diskload::{self, DiskLoadParams};
use nova_guest::hostile::{self, Expect, HostilePlan, HostileRng, Surface};
use nova_guest::os::{build_os, OsParams, Program};
use nova_hw::fault::{FaultKind, FaultPlan};
use nova_hw::guestfault::VmKill;
use nova_hw::machine::{Machine, MachineConfig};
use nova_trace::{cat, names, Tracer};
use nova_user::root::{RootOps, RootPm};
use nova_vmm::{GuestImage, LaunchOptions, System, Vmm, VmmConfig};
use nova_x86::insn::{AluOp, Cond};
use nova_x86::reg::Reg;
use nova_x86::MemRef;

fn image(prog: Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// The fixed seed sweep: 13 per surface by default (65 scenarios
/// total), 64 per surface under `NOVA_SLOW_TESTS`.
fn seeds() -> std::ops::Range<u64> {
    if std::env::var_os("NOVA_SLOW_TESTS").is_some() {
        0..64
    } else {
        0..13
    }
}

/// Builds the single-VM system a plan asks for.
fn launch(plan: &mut Option<Program>, needs: hostile::Needs) -> System {
    let prog = plan.take().expect("program consumed once");
    let mut cfg = VmmConfig::full_virt(image(prog), hostile::GUEST_PAGES);
    cfg.pv_disk = needs.pv_disk;
    cfg.pv_nic = needs.pv_nic;
    if needs.shadow_paging {
        cfg.paging = VmPaging::Shadow;
    }
    System::build(LaunchOptions::standard(cfg))
}

/// Runs one plan to completion and checks its full contract: the
/// outcome code, the structured kill record (present and exact for
/// kills, absent for survivals), the kill counter, and the rejection
/// floor.
fn check_plan(plan: HostilePlan) -> System {
    let label = format!(
        "{}/{}/seed{}",
        plan.surface.name(),
        plan.mutation,
        plan.seed
    );
    let mut prog = Some(plan.program);
    let mut sys = launch(&mut prog, plan.needs);
    let out = sys.run(Some(2_000_000_000));
    match plan.expect {
        Expect::Kill(kill) => {
            assert_eq!(
                out,
                RunOutcome::Shutdown(kill.exit_code()),
                "{label}: kill exit code"
            );
            assert_eq!(sys.vmm().kill, Some(kill), "{label}: structured record");
            assert!(VmKill::is_kill_code(kill.exit_code()), "{label}");
            assert_eq!(sys.k.counters.vm_kills, 1, "{label}: one kill counted");
        }
        Expect::Exit(code) => {
            assert_eq!(out, RunOutcome::Shutdown(code), "{label}: guest survives");
            assert_eq!(sys.vmm().kill, None, "{label}: no kill record");
            assert_eq!(sys.k.counters.vm_kills, 0, "{label}: no kill counted");
        }
    }
    assert!(
        sys.k.counters.guest_faults_rejected >= plan.min_rejections,
        "{label}: {} rejections < floor {}",
        sys.k.counters.guest_faults_rejected,
        plan.min_rejections
    );
    sys
}

fn sweep(surface: Surface) {
    for seed in seeds() {
        check_plan(hostile::plan(surface, seed));
    }
}

#[test]
fn hostile_pv_disk_ring_sweep() {
    sweep(Surface::PvDiskRing);
}

#[test]
fn hostile_pv_net_ring_sweep() {
    sweep(Surface::PvNetRing);
}

#[test]
fn hostile_vahci_sweep() {
    sweep(Surface::Vahci);
}

#[test]
fn hostile_vtlb_sweep() {
    sweep(Surface::VtlbWalk);
}

#[test]
fn hostile_emulator_sweep() {
    sweep(Surface::Emulator);
}

/// The same `(surface, seed)` pair reproduces bit-for-bit: identical
/// guest code, identical outcome, identical kill record, identical
/// counters. A fuzz failure is therefore reproducible from its seed.
#[test]
fn hostile_runs_are_byte_reproducible() {
    for surface in Surface::ALL {
        let p1 = hostile::plan(surface, 7);
        let p2 = hostile::plan(surface, 7);
        assert_eq!(p1.program.bytes, p2.program.bytes, "{surface:?} code");
        assert_eq!(p1.mutation, p2.mutation);
        assert_eq!(p1.expect, p2.expect);

        let run = |plan: HostilePlan| {
            let mut prog = Some(plan.program);
            let mut sys = launch(&mut prog, plan.needs);
            let out = sys.run(Some(2_000_000_000));
            let marks: Vec<u32> = sys.k.machine.marks().iter().map(|&(_, v)| v).collect();
            (
                out,
                sys.vmm().kill,
                sys.k.counters.guest_faults_rejected,
                sys.k.counters.vm_kills,
                marks,
            )
        };
        assert_eq!(run(p1), run(p2), "{surface:?} run");
    }
}

/// Checksum the forever-witness reports on iteration `iter`.
fn witness_checksum(iter: u32) -> u32 {
    let mut v = 0x1234_5678u32.wrapping_add(iter);
    let mut s = 0u32;
    for _ in 0..1024 {
        s = s.wrapping_add(v);
        v = v.wrapping_add(0x9e37_79b9);
    }
    s
}

/// A sibling VM that loops forever: fill a page with an
/// iteration-dependent pattern, checksum it, report the sum through
/// the mark port. Progress and integrity are both observable.
fn forever_witness() -> Program {
    build_os(OsParams::minimal(), |a, _| {
        a.mov_ri(Reg::Esi, 0);
        let iter = a.here_label();
        a.mov_ri(Reg::Edi, 0x8000);
        a.mov_ri(Reg::Ecx, 1024);
        a.mov_ri(Reg::Eax, 0x1234_5678);
        a.alu_rr(AluOp::Add, Reg::Eax, Reg::Esi);
        let fill = a.here_label();
        a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Eax);
        a.add_ri(Reg::Eax, 0x9e37_79b9);
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, fill);
        a.mov_ri(Reg::Edi, 0x8000);
        a.mov_ri(Reg::Ecx, 1024);
        a.mov_ri(Reg::Ebx, 0);
        let sum = a.here_label();
        a.alu_rm(AluOp::Add, Reg::Ebx, MemRef::base_disp(Reg::Edi, 0));
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, sum);
        a.mov_rr(Reg::Eax, Reg::Ebx);
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        a.inc_r(Reg::Esi);
        a.jmp(iter);
    })
}

/// Containment: killing a Byzantine VM must not perturb a sibling.
/// The witness VM keeps producing correct checksums before and after
/// the hostile VM is killed, and only the hostile VMM carries a kill
/// record.
#[test]
fn hostile_vm_kill_leaves_sibling_running() {
    let witness = VmmConfig::full_virt(image(forever_witness()), 1024);
    let mut opts = LaunchOptions::standard(witness);
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);

    let plan = hostile::plan(Surface::PvDiskRing, 0);
    let Expect::Kill(kill) = plan.expect else {
        panic!("seed 0 must be a kill plan");
    };
    let hostile_id = sys.add_vm(VmmConfig::full_virt(
        image(plan.program),
        hostile::GUEST_PAGES,
    ));

    // Phase 1: the hostile VM attacks and is killed; its structured
    // exit code surfaces as the shutdown request.
    let out = sys.run(Some(10_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(kill.exit_code()));
    let hostile_vmm = sys.k.component_mut::<Vmm>(hostile_id).expect("hostile vmm");
    assert_eq!(hostile_vmm.kill, Some(kill));
    assert_eq!(sys.vmm().kill, None, "witness VMM untouched");
    let marks_at_kill = sys.k.machine.marks().len();

    // Phase 2: the system keeps running; the witness makes further
    // progress with bit-exact checksums. A modest budget suffices —
    // hundreds of iterations prove liveness.
    let out = sys.run(Some(25_000_000));
    assert_eq!(out, RunOutcome::Budget, "witness loops forever");
    let vals: Vec<u32> = sys.k.machine.marks().iter().map(|&(_, v)| v).collect();
    assert!(
        vals.len() > marks_at_kill,
        "witness progressed after the kill"
    );
    for (i, &v) in vals.iter().enumerate() {
        assert_eq!(v, witness_checksum(i as u32), "witness checksum {i}");
    }
    assert_eq!(sys.k.counters.vm_kills, 1);
}

/// The kill and rejection paths publish their per-domain metrics:
/// `guest_fault_rejected` keyed by surface, `vm_kills_by_reason`
/// keyed by the structured exit code.
#[test]
fn hostile_kill_publishes_metrics() {
    let plan = hostile::plan(Surface::PvDiskRing, 0);
    let Expect::Kill(kill) = plan.expect else {
        panic!("seed 0 must be a kill plan");
    };
    let mut prog = Some(plan.program);
    let mut sys = launch(&mut prog, plan.needs);
    let cpus = sys.k.machine.cpus.len().max(1);
    sys.k.machine.bus.trace = Tracer::new(cpus, 1 << 21, cat::ALL);
    let out = sys.run(Some(2_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(kill.exit_code()));

    let m = &sys.k.machine.tracer().metrics;
    let rejected = m
        .get(
            names::GUEST_FAULT_REJECTED,
            nova_hw::guestfault::GuestSurface::PvDiskRing as u64,
        )
        .expect("rejection metric recorded");
    assert!(rejected.count >= 1);
    let kills = m
        .get(names::VM_KILLS_BY_REASON, kill.exit_code() as u64)
        .expect("kill metric recorded");
    assert_eq!(kills.count, 1);
}

/// A do-nothing component lending its PD/EC identity to the
/// hypercall fuzzer.
#[derive(Default)]
struct NullComp;

impl Component for NullComp {
    fn name(&self) -> &str {
        "hc-fuzzer"
    }
    fn on_call(&mut self, _k: &mut Kernel, _c: CompCtx, _p: u64, _u: &mut Utcb) {}
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Hypercall-argument fuzz: an unprivileged component fires wild
/// selectors, counts, ranges and flags at every hypercall family.
/// Every call must return `Ok` or a typed error — a kernel panic
/// fails the test by crashing it — and the kernel must remain fully
/// functional afterwards.
#[test]
fn hostile_hypercall_args_are_contained() {
    let m = Machine::new(MachineConfig::core_i7(64 << 20));
    let cfg = KernelConfig {
        obj_quota: 1 << 20,
        ..KernelConfig::default()
    };
    let mut k = Kernel::new(m, cfg);
    let (root, root_ec) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
    k.start_component(root, root_ec);
    let root_ctx = k.component_mut::<RootPm>(root).unwrap().ctx.unwrap();
    let mut ops = RootOps::new(&mut k, root_ctx);
    let (cl_sel, cl_pd) = ops.create_pd("fuzzer", None).unwrap();
    ops.grant_mem(cl_sel, 0x400, 64, MemRights::RW, 0).unwrap();
    let (cl_comp, cl_ec) = k.load_component(cl_pd, 0, Box::<NullComp>::default());
    k.start_component(cl_comp, cl_ec);
    let ctx = CompCtx {
        pd: cl_pd,
        ec: cl_ec,
        comp: cl_comp,
    };

    let mut errors = 0u64;
    let mut calls = 0u64;
    for seed in seeds() {
        let mut rng = HostileRng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let wild = |rng: &mut HostileRng| -> u64 {
            match rng.below(4) {
                0 => 0,
                1 => u64::MAX,
                2 => u64::MAX - rng.below(16),
                _ => rng.next(),
            }
        };
        for _ in 0..48 {
            let hc = match rng.below(21) {
                0 => Hypercall::CreatePd {
                    name: "fz".into(),
                    vm: None,
                    dst: rng.below(64) as CapSel,
                },
                1 => Hypercall::DestroyPd {
                    pd: wild(&mut rng) as CapSel,
                },
                2 => Hypercall::CreateEc {
                    pd: wild(&mut rng) as CapSel,
                    vcpu: rng.below(2) == 0,
                    cpu: wild(&mut rng) as usize,
                    dst: rng.below(64) as CapSel,
                },
                3 => Hypercall::CreateSc {
                    ec: wild(&mut rng) as CapSel,
                    prio: rng.next() as u8,
                    quantum: wild(&mut rng),
                    dst: rng.below(64) as CapSel,
                },
                4 => Hypercall::CreatePt {
                    ec: wild(&mut rng) as CapSel,
                    mtd: rng.next() as u32,
                    id: wild(&mut rng),
                    dst: rng.below(64) as CapSel,
                },
                5 => Hypercall::CreateSm {
                    count: wild(&mut rng),
                    dst: rng.below(64) as CapSel,
                },
                6 => Hypercall::DelegateMem {
                    dst_pd: wild(&mut rng) as CapSel,
                    base: wild(&mut rng),
                    count: wild(&mut rng),
                    rights: MemRights::RW,
                    hot: wild(&mut rng),
                },
                7 => Hypercall::DelegateIo {
                    dst_pd: wild(&mut rng) as CapSel,
                    base: rng.next() as u16,
                    count: rng.next() as u16,
                },
                8 => Hypercall::DelegateCap {
                    dst_pd: wild(&mut rng) as CapSel,
                    sel: wild(&mut rng) as CapSel,
                    perms: Perms::ALL,
                    hot: wild(&mut rng) as CapSel,
                },
                9 => Hypercall::RevokeMem {
                    base: wild(&mut rng),
                    count: wild(&mut rng),
                    include_self: rng.below(2) == 0,
                },
                10 => Hypercall::RevokeIo {
                    base: rng.next() as u16,
                    count: rng.next() as u16,
                    include_self: rng.below(2) == 0,
                },
                11 => Hypercall::RevokeCap {
                    sel: wild(&mut rng) as CapSel,
                    include_self: rng.below(2) == 0,
                },
                12 => Hypercall::SmUp {
                    sm: wild(&mut rng) as CapSel,
                },
                13 => Hypercall::SmDown {
                    sm: wild(&mut rng) as CapSel,
                },
                14 => Hypercall::SmBind {
                    sm: wild(&mut rng) as CapSel,
                },
                15 => Hypercall::EcRecall {
                    ec: wild(&mut rng) as CapSel,
                },
                16 => Hypercall::EcResume {
                    ec: wild(&mut rng) as CapSel,
                    inject: None,
                    intwin: rng.below(2) == 0,
                },
                17 => Hypercall::AssignGsi {
                    sm: wild(&mut rng) as CapSel,
                    gsi: rng.next() as u8,
                },
                18 => Hypercall::SetTimer {
                    sm: wild(&mut rng) as CapSel,
                    period: wild(&mut rng),
                },
                19 => Hypercall::AssignDev {
                    pd: wild(&mut rng) as CapSel,
                    device: wild(&mut rng) as usize,
                },
                _ => Hypercall::WatchdogArm {
                    pd: wild(&mut rng) as CapSel,
                    sm: wild(&mut rng) as CapSel,
                    timeout: wild(&mut rng),
                },
            };
            calls += 1;
            if k.hypercall(ctx, hc).is_err() {
                errors += 1;
            }
        }
    }
    assert!(errors > 0, "wild arguments must produce typed errors");
    assert!(calls >= 48, "sweep ran");

    // The kernel is still fully functional: a well-formed create
    // succeeds.
    k.hypercall(
        ctx,
        Hypercall::CreateSm {
            count: 0,
            dst: 0x3f0,
        },
    )
    .expect("kernel survives the fuzz functional");
}

const CHAOS_SEED: u64 = 0x5eed_c0ff_ee01;

/// Combined adversity: platform fault injection (task-file errors,
/// lost/spurious IRQs, stuck DMA, IOMMU faults) against the
/// supervised disk stack *while* a co-resident Byzantine VM attacks
/// the PV disk ring. The hostile VM dies with its structured code,
/// the supervised guest still completes its I/O correctly, and
/// faults were actually injected.
#[test]
fn hostile_guest_under_chaos_plan() {
    let p = DiskLoadParams {
        requests: 12,
        block_bytes: 4096,
    };
    let mut opts = LaunchOptions::supervised(VmmConfig::full_virt(image(diskload::build(p)), 2048));
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);

    let plan = hostile::plan(Surface::PvDiskRing, 0);
    let Expect::Kill(kill) = plan.expect else {
        panic!("seed 0 must be a kill plan");
    };
    let hostile_id = sys.add_vm(VmmConfig::full_virt(
        image(plan.program),
        hostile::GUEST_PAGES,
    ));

    sys.k.machine.set_fault_plan(
        FaultPlan::seeded(CHAOS_SEED)
            .with(FaultKind::AhciTaskFileError, 9000, 3)
            .with(FaultKind::AhciLostIrq, 9000, 3)
            .with(FaultKind::AhciSpuriousIrq, 9000, 3)
            .with(FaultKind::AhciStuckDma, 9000, 2)
            .with(FaultKind::IommuFault, 5000, 2),
    );

    // Each shutdown request pauses the run loop; collect codes until
    // both the hostile kill and the clean diskload completion landed.
    let mut codes = Vec::new();
    for _ in 0..4 {
        match sys.run(Some(60_000_000_000)) {
            RunOutcome::Shutdown(c) => codes.push(c),
            other => panic!("unexpected outcome {other:?} (codes so far: {codes:?})"),
        }
        if codes.contains(&kill.exit_code()) && codes.contains(&0) {
            break;
        }
    }
    assert!(
        codes.contains(&kill.exit_code()) && codes.contains(&0),
        "want kill + clean completion, got {codes:?}"
    );

    let hostile_vmm = sys.k.component_mut::<Vmm>(hostile_id).expect("hostile vmm");
    assert_eq!(hostile_vmm.kill, Some(kill));
    assert_eq!(sys.vmm().kill, None, "diskload VMM untouched");
    let injected: u64 = sys.k.machine.faults().injected.iter().sum();
    assert!(injected >= 1, "chaos plan actually fired");
}
