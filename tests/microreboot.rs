//! VMM microreboot: guest-transparent checkpoint/restore driven by
//! root's crash-only supervision tree. The headline property is the
//! Issue-7 acceptance run — a PV disk workload with the VMM killed
//! mid-flight completes with byte-identical data versus a crash-free
//! run, the guest makes forward progress after the restore, and a
//! co-resident VM never notices. The remaining tests walk the
//! escalation ladder (resume → cold reboot → mark failed), cross the
//! recovery with a simultaneous disk-server crash, and pin checkpoint
//! determinism (same seed ⇒ byte-identical checkpoints).

use nova_core::kernel::VMM_CRASH_CODE;
use nova_core::RunOutcome;
use nova_guest::os::{build_os, OsParams};
use nova_guest::pvdiskload::{self, PvDiskLoadParams};
use nova_guest::rt::layout;
use nova_hw::fault::{FaultKind, FaultPlan};
use nova_trace::{cat, names, Tracer};
use nova_user::root::{RootPm, LEVEL_FAILED, LEVEL_RESUME};
use nova_vmm::{GuestImage, LaunchOptions, System, Vmm, VmmConfig};
use nova_x86::insn::{AluOp, Cond};
use nova_x86::reg::Reg;
use nova_x86::MemRef;

const BLOCK: u32 = 4096;
const BATCH: u32 = 8;
const REQUESTS: u32 = 32;
const BUDGET: u64 = 200_000_000_000;
/// Tighter-than-default checkpoint cadence so a checkpoint exists
/// well before the workload finishes.
const CKPT_PERIOD: u64 = 500_000;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// The microrebootable PV-disk system under test.
fn microreboot_system() -> System {
    let prog = pvdiskload::build(PvDiskLoadParams {
        requests: REQUESTS,
        block_bytes: BLOCK,
        batch: BATCH,
    });
    let mut cfg = VmmConfig::full_virt(image(prog), 4096);
    cfg.pv_disk = true;
    let mut opts = LaunchOptions::microrebootable(cfg);
    opts.microreboot = Some(CKPT_PERIOD);
    System::build(opts)
}

/// Iterations of the co-resident integrity witness.
const WITNESS_ITERS: u32 = 6;

/// Checksum the witness computes on iteration `iter`.
fn witness_checksum(iter: u32) -> u32 {
    let mut v = 0x1234_5678u32.wrapping_add(iter);
    let mut s = 0u32;
    for _ in 0..1024 {
        s = s.wrapping_add(v);
        v = v.wrapping_add(0x9e37_79b9);
    }
    s
}

/// A sibling VM that fills a page with a rolling pattern, checksums
/// it, and reports each checksum through the mark port. Faults and
/// microreboots of the *other* VM must never perturb these values.
fn witness_guest() -> nova_guest::os::Program {
    build_os(OsParams::minimal(), |a, _| {
        a.mov_ri(Reg::Esi, 0);
        let iter = a.here_label();
        a.mov_ri(Reg::Edi, 0x8000);
        a.mov_ri(Reg::Ecx, 1024);
        a.mov_ri(Reg::Eax, 0x1234_5678);
        a.alu_rr(AluOp::Add, Reg::Eax, Reg::Esi);
        let fill = a.here_label();
        a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Eax);
        a.add_ri(Reg::Eax, 0x9e37_79b9);
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, fill);
        a.mov_ri(Reg::Edi, 0x8000);
        a.mov_ri(Reg::Ecx, 1024);
        a.mov_ri(Reg::Ebx, 0);
        let sum = a.here_label();
        a.alu_rm(AluOp::Add, Reg::Ebx, MemRef::base_disp(Reg::Edi, 0));
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, sum);
        a.mov_rr(Reg::Eax, Reg::Ebx);
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        a.inc_r(Reg::Esi);
        a.cmp_ri(Reg::Esi, WITNESS_ITERS);
        a.jcc(Cond::B, iter);
        let top = a.here_label();
        a.jmp(top);
    })
}

/// Mark values emitted by the witness (everything except pvdiskload's
/// begin/end marks).
fn witness_marks(sys: &System) -> Vec<u32> {
    sys.k
        .machine
        .marks()
        .iter()
        .map(|&(_, v)| v)
        .filter(|&v| v != 0x1000 && v != 0x1001)
        .collect()
}

/// Host address of the guest's PV read buffer for batch slot `slot`.
fn pv_buf_host(slot: u32) -> u64 {
    0x1000 * 4096 + (layout::PV_DISK_BUF + slot * 4096) as u64
}

/// The microrebooted VM's supervision record, for assertions.
fn with_sup<R>(sys: &mut System, f: impl FnOnce(&nova_user::root::VmmSupervision) -> R) -> R {
    let root = sys.root;
    let slot = sys.microreboot.expect("microreboot enabled");
    let rp = sys.k.component_mut::<RootPm>(root).expect("root pm");
    f(rp.vmm_supervision[slot].as_ref().expect("supervised vm"))
}

/// Slice-runs until `done` says stop (or the workload finishes, which
/// fails the test via the caller's later assertions).
fn run_until(sys: &mut System, mut done: impl FnMut(&mut System) -> bool) {
    loop {
        let out = sys.run(Some(100_000));
        assert_ne!(out, RunOutcome::Shutdown(0), "guest finished prematurely");
        if done(sys) {
            return;
        }
    }
}

/// Completed PV requests on the *current* VMM incarnation.
fn pv_completions(sys: &mut System) -> u64 {
    let (vmm, _) = sys.microreboot_vmm().expect("supervised vmm");
    sys.k
        .component_mut::<Vmm>(vmm)
        .map(|v| v.dev().pvdisk.completions)
        .unwrap_or(0)
}

/// Reference run without any crash: the byte-identity baseline.
fn crash_free_reference() -> Vec<u8> {
    let mut sys = microreboot_system();
    assert_eq!(sys.run(Some(BUDGET)), RunOutcome::Shutdown(0));
    sys.k.machine.mem.read_bytes(pv_buf_host(0), 8 * 4096)
}

/// Issue-7 acceptance: kill the VMM mid-workload. The supervisor
/// restores the guest from the last checkpoint; the run completes with
/// byte-identical disk contents, the sibling VM never stalls, and the
/// recovery metrics are published.
#[test]
fn crash_mid_workload_restores_and_completes_byte_identical() {
    let reference = crash_free_reference();

    let mut sys = microreboot_system();
    sys.add_vm(VmmConfig::full_virt(image(witness_guest()), 1024));
    let cpus = sys.k.machine.cpus.len().max(1);
    sys.k.machine.bus.trace = Tracer::new(cpus, 1 << 21, cat::ALL);

    // Let the guest make real progress and the cadence timer take at
    // least one checkpoint, then kill the VMM.
    run_until(&mut sys, |s| {
        pv_completions(s) >= 8 && with_sup(s, |sup| sup.last_checkpoint.is_some())
    });
    let (_, vmm_pd) = sys.microreboot_vmm().expect("supervised vmm");
    sys.k.pd_fault(vmm_pd, VMM_CRASH_CODE);
    assert_eq!(sys.k.counters.pd_deaths, 1);

    let out = sys.run(Some(BUDGET));
    assert_eq!(
        out,
        RunOutcome::Shutdown(0),
        "guest completed after restore"
    );

    // Exactly one restore, at the resume rung, and the guest made
    // forward progress afterwards (the end mark is emitted once).
    assert_eq!(sys.k.counters.vmm_restarts, 1);
    assert!(sys.k.counters.checkpoints_taken >= 1);
    assert_eq!(sys.k.counters.escalations, 0);
    with_sup(&mut sys, |sup| {
        assert_eq!(sup.restarts, 1);
        assert_eq!(sup.level, LEVEL_RESUME);
        assert!(!sup.failed);
    });
    let diskload_marks: Vec<u32> = sys
        .k
        .machine
        .marks()
        .iter()
        .map(|&(_, v)| v)
        .filter(|&v| v == 0x1000 || v == 0x1001)
        .collect();
    assert_eq!(
        diskload_marks,
        vec![0x1000, 0x1001],
        "begin/end marks each appear once: the restore resumed the \
         guest mid-workload instead of rebooting it"
    );

    // Byte-identical disk contents versus the crash-free run, and both
    // match the backing store.
    let got = sys.k.machine.mem.read_bytes(pv_buf_host(0), 8 * 4096);
    assert_eq!(got, reference, "crashed run delivers identical bytes");
    let sectors = (BLOCK / 512) as u64;
    let mut expect = Vec::new();
    for req in 24..32u64 {
        for s in 0..sectors {
            expect.extend_from_slice(&sys.k.machine.ahci().sector(req * sectors + s));
        }
    }
    assert_eq!(got, expect, "contents match the backing store");

    // The sibling VM ran to completion with correct checksums.
    let marks = witness_marks(&sys);
    assert_eq!(marks.len(), WITNESS_ITERS as usize, "sibling never stalled");
    for (i, &m) in marks.iter().enumerate() {
        assert_eq!(m, witness_checksum(i as u32), "sibling data intact");
    }

    // Recovery metrics are published.
    let metrics = &sys.k.machine.bus.trace.metrics;
    let slot = sys.microreboot.expect("slot") as u64;
    let restarts = metrics.get(names::VMM_RESTARTS, slot).expect("metric");
    assert_eq!(restarts.count, 1);
    let lat = metrics
        .get(names::RESTORE_LATENCY_CYCLES, slot)
        .expect("metric");
    assert_eq!(lat.count, 1);
    assert!(lat.sum > 0, "restore latency is a real cycle count");
    let ckpt = metrics.get(names::CHECKPOINT_BYTES, slot).expect("metric");
    assert!(ckpt.count >= 1 && ckpt.sum > 0);
}

/// A second crash right after the restore means the checkpoint itself
/// reproduces the failure: the ladder climbs to a cold reboot, and the
/// cold-booted guest still finishes with correct data.
#[test]
fn second_crash_inside_stability_window_escalates_to_cold_reboot() {
    let mut sys = microreboot_system();
    run_until(&mut sys, |s| {
        pv_completions(s) >= 8 && with_sup(s, |sup| sup.last_checkpoint.is_some())
    });
    let (_, pd1) = sys.microreboot_vmm().expect("supervised vmm");
    sys.k.pd_fault(pd1, VMM_CRASH_CODE);
    run_until(&mut sys, |s| with_sup(s, |sup| sup.restarts == 1));

    // Crash again inside the stability window (well under 2M cycles
    // after the restore): the resume rung does not hold.
    let (_, pd2) = sys.microreboot_vmm().expect("supervised vmm");
    assert_ne!(pd1, pd2, "revive built a fresh protection domain");
    sys.k.pd_fault(pd2, VMM_CRASH_CODE);

    let out = sys.run(Some(BUDGET));
    assert_eq!(out, RunOutcome::Shutdown(0), "cold reboot completed");
    assert_eq!(sys.k.counters.vmm_restarts, 2);
    assert_eq!(sys.k.counters.escalations, 1);
    with_sup(&mut sys, |sup| {
        assert_eq!(sup.restarts, 2);
        assert!(!sup.failed);
    });

    // A cold reboot re-runs the workload from the start: the begin
    // mark appears twice, the end mark once, and the data is correct.
    let marks: Vec<u32> = sys.k.machine.marks().iter().map(|&(_, v)| v).collect();
    assert_eq!(marks.iter().filter(|&&v| v == 0x1001).count(), 1);
    assert_eq!(*marks.last().expect("marks"), 0x1001);
    let got = sys.k.machine.mem.read_bytes(pv_buf_host(7), 16);
    let sectors = (BLOCK / 512) as u64;
    let expect = sys.k.machine.ahci().sector(31 * sectors);
    assert_eq!(got, expect[..16].to_vec(), "data correct after cold reboot");
}

/// Revives that keep failing at every rung exhaust the ladder: the VM
/// is marked failed and left down, while the sibling VM keeps running
/// untouched — crash-only containment, not a hung system or an
/// unbounded retry loop. The permanent failure is a disk server whose
/// own supervisor has given up: every VMM revive then finds a dead
/// server and must fail cleanly.
#[test]
fn ladder_exhaustion_marks_vm_failed_while_sibling_runs() {
    let mut sys = microreboot_system();
    sys.add_vm(VmmConfig::full_virt(image(witness_guest()), 1024));
    run_until(&mut sys, |s| {
        pv_completions(s) >= 8 && with_sup(s, |sup| sup.last_checkpoint.is_some())
    });

    // Put the disk server permanently down (its own ladder exhausted),
    // then kill the VMM: every revive attempt now fails, so the VM
    // ladder must climb resume -> cold -> failed and stop.
    let srv_pd = {
        let root = sys.root;
        let rp = sys.k.component_mut::<RootPm>(root).expect("root pm");
        rp.disk_failed = true;
        rp.supervision
            .as_ref()
            .expect("disk supervision")
            .srv_ctx
            .pd
    };
    sys.k.pd_fault(srv_pd, 0xdead);
    let (_, vmm_pd) = sys.microreboot_vmm().expect("supervised vmm");
    sys.k.pd_fault(vmm_pd, VMM_CRASH_CODE);

    // Bounded backoffs: the whole ladder plays out in a few million
    // cycles; the run never shuts down (the witness spins), so a fixed
    // slice bounds the test.
    let _ = sys.run(Some(60_000_000));
    with_sup(&mut sys, |sup| {
        assert!(sup.failed, "ladder terminated in the failed state");
        assert_eq!(sup.level, LEVEL_FAILED);
        assert_eq!(sup.restarts, 0, "no revive ever succeeded");
        assert!(!sup.reviving, "no retry left pending after failure");
    });
    assert_eq!(
        sys.k.counters.escalations, 2,
        "exactly two climbs: resume -> cold -> failed"
    );
    assert_eq!(sys.k.counters.vmm_restarts, 0);

    // The sibling finished all its iterations with correct data.
    let marks = witness_marks(&sys);
    assert_eq!(marks.len(), WITNESS_ITERS as usize, "sibling never stalled");
    for (i, &m) in marks.iter().enumerate() {
        assert_eq!(m, witness_checksum(i as u32), "sibling data intact");
    }
}

/// The recovery crossed with a disk-server crash: the server dies at
/// the same moment as the VMM, so the first revive attempt finds a
/// dead server and must fail cleanly; the bounded-backoff retry then
/// succeeds against the respawned server (restore idempotence — a
/// failed attempt's half-built incarnation is torn down and rebuilt).
#[test]
fn disk_server_crash_during_restore_retries_idempotently() {
    let reference = crash_free_reference();

    let mut sys = microreboot_system();
    run_until(&mut sys, |s| {
        pv_completions(s) >= 8 && with_sup(s, |sup| sup.last_checkpoint.is_some())
    });

    // Kill the disk server and the VMM in the same stopped instant,
    // then force root to handle the VMM death first, while the disk
    // server is still dead.
    let srv_pd = {
        let root = sys.root;
        let rp = sys.k.component_mut::<RootPm>(root).expect("root pm");
        let sup = rp.supervision.as_ref().expect("disk supervision");
        sup.srv_ctx.pd
    };
    let (_, vmm_pd) = sys.microreboot_vmm().expect("supervised vmm");
    sys.k.pd_fault(srv_pd, 0xdead);
    sys.k.pd_fault(vmm_pd, VMM_CRASH_CODE);
    let root = sys.root;
    let root_ctx = sys.root_ctx;
    let slot = sys.microreboot.expect("slot");
    sys.k.invoke_component::<RootPm, _>(root, |rp, k| {
        rp.handle_vmm_death(k, root_ctx, slot);
    });
    with_sup(&mut sys, |sup| {
        assert!(sup.reviving, "first attempt could not finish");
        assert_eq!(sup.attempts, 1, "the dead server failed one attempt");
    });

    let out = sys.run(Some(BUDGET));
    assert_eq!(
        out,
        RunOutcome::Shutdown(0),
        "guest completed after both crashes"
    );
    assert_eq!(sys.k.counters.driver_restarts, 1);
    assert!(
        sys.k.counters.vmm_restarts >= 1,
        "the retry revived the VM against the respawned server"
    );
    with_sup(&mut sys, |sup| {
        assert!(!sup.failed);
        assert!(!sup.reviving);
    });

    let got = sys.k.machine.mem.read_bytes(pv_buf_host(0), 8 * 4096);
    assert_eq!(
        got, reference,
        "data byte-identical across the double crash"
    );
}

/// The kernel's own fault injector (`FaultKind::VmmCrash`) kills the
/// VMM at a seed-determined exit; the supervision tree recovers and
/// the guest completes correctly.
#[test]
fn injected_vmm_crash_fault_recovers() {
    let mut sys = microreboot_system();
    sys.k
        .machine
        .set_fault_plan(FaultPlan::seeded(0x5eed_c0ff_ee07).with(FaultKind::VmmCrash, 20_000, 1));
    let out = sys.run(Some(BUDGET));
    assert_eq!(
        out,
        RunOutcome::Shutdown(0),
        "guest completed after injection"
    );
    let injected: u64 = sys.k.machine.faults().injected.iter().sum();
    assert_eq!(injected, 1, "the plan fired exactly once");
    assert_eq!(sys.k.counters.vmm_restarts, 1);

    let got = sys.k.machine.mem.read_bytes(pv_buf_host(7), 16);
    let sectors = (BLOCK / 512) as u64;
    let expect = sys.k.machine.ahci().sector(31 * sectors);
    assert_eq!(got, expect[..16].to_vec(), "data correct after recovery");
}

/// Checkpoint determinism (the CI byte-identity gate): two runs of the
/// same seeded system produce byte-identical checkpoints at the same
/// cadence tick.
#[test]
fn checkpoints_byte_identical_across_same_seed_runs() {
    let snap = |_: ()| -> Vec<u8> {
        let mut sys = microreboot_system();
        run_until(&mut sys, |s| {
            with_sup(s, |sup| sup.seq >= 2 && sup.last_checkpoint.is_some())
        });
        with_sup(&mut sys, |sup| {
            (sup.last_checkpoint.as_ref().expect("checkpoint")).clone()
        })
    };
    let a = snap(());
    let b = snap(());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same checkpoint, byte for byte");
}

/// Slow crash-matrix sweep (set `NOVA_SLOW_TESTS=1`): kill the VMM at
/// a grid of points through the workload; every run must complete with
/// correct data and exactly one restore.
#[test]
fn crash_matrix_sweep() {
    if std::env::var("NOVA_SLOW_TESTS").is_err() {
        eprintln!("skipping crash matrix (set NOVA_SLOW_TESTS=1 to run)");
        return;
    }
    let reference = crash_free_reference();
    for completions_before_crash in [1u64, 4, 8, 12, 16, 24] {
        let mut sys = microreboot_system();
        run_until(&mut sys, |s| {
            pv_completions(s) >= completions_before_crash
                && with_sup(s, |sup| sup.last_checkpoint.is_some())
        });
        let (_, vmm_pd) = sys.microreboot_vmm().expect("supervised vmm");
        sys.k.pd_fault(vmm_pd, VMM_CRASH_CODE);
        let out = sys.run(Some(BUDGET));
        assert_eq!(
            out,
            RunOutcome::Shutdown(0),
            "crash after {completions_before_crash} completions recovered"
        );
        assert_eq!(sys.k.counters.vmm_restarts, 1);
        let got = sys.k.machine.mem.read_bytes(pv_buf_host(0), 8 * 4096);
        assert_eq!(
            got, reference,
            "byte-identical data (crash at {completions_before_crash})"
        );
    }
}
