//! Integration tests for the batched paravirtual I/O rings: exit
//! structure versus the trap-and-emulate vAHCI path, cross-path data
//! identity, and the fault-injection / driver-recovery suite run over
//! the new path. The two guest workloads issue the same sequential
//! reads, so any divergence is a ring-protocol bug, not a workload
//! difference.

use nova_core::{PdId, RunOutcome};
use nova_guest::diskload::{self, DiskLoadParams};
use nova_guest::pvdiskload::{self, PvDiskLoadParams};
use nova_guest::rt::layout;
use nova_hw::fault::{FaultKind, FaultPlan};
use nova_user::disk::DiskServer;
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};

const BLOCK: u32 = 4096;
const BATCH: u32 = 8;
const BUDGET: u64 = 200_000_000_000;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// Runs the trap-and-emulate diskload guest to completion.
fn run_trap(requests: u32) -> System {
    let prog = diskload::build(DiskLoadParams {
        requests,
        block_bytes: BLOCK,
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(BUDGET)), RunOutcome::Shutdown(0));
    sys
}

/// Runs the batched PV-ring guest to completion.
fn run_pv(requests: u32) -> System {
    let prog = pvdiskload::build(PvDiskLoadParams {
        requests,
        block_bytes: BLOCK,
        batch: BATCH,
    });
    let mut cfg = VmmConfig::full_virt(image(prog), 4096);
    cfg.pv_disk = true;
    let mut sys = System::build(LaunchOptions::standard(cfg));
    assert_eq!(sys.run(Some(BUDGET)), RunOutcome::Shutdown(0));
    sys
}

/// The headline acceptance criterion: at batch size 8 the PV path
/// costs at most 1/8 the exits per request of the trap-and-emulate
/// vAHCI. Measured as a marginal delta (80 vs. 16 requests) so boot
/// and teardown exits cancel out of both columns.
#[test]
fn batched_exits_per_request_at_most_an_eighth_of_trap() {
    let trap_lo = run_trap(16).k.counters.total_exits();
    let trap_hi = run_trap(80).k.counters.total_exits();
    let pv_lo = run_pv(16).k.counters.total_exits();
    let pv_hi = run_pv(80).k.counters.total_exits();

    let trap_marginal = trap_hi - trap_lo; // 64 extra requests
    let pv_marginal = pv_hi - pv_lo;
    assert!(trap_marginal > 0, "trap path must scale with requests");
    assert!(
        8 * pv_marginal <= trap_marginal,
        "PV exits/request not <= 1/8 of trap: {pv_marginal} vs {trap_marginal} per 64 requests"
    );
}

/// Byte-identical disk contents across the two submission paths: the
/// last block the trap guest reads and the last descriptor the PV
/// guest reads cover the same LBAs and must land bit-exact.
#[test]
fn pv_and_trap_paths_read_identical_bytes() {
    let trap = run_trap(16);
    let mut pv = run_pv(16);

    let trap_host = 0x1000 * 4096 + layout::DISK_BUF as u64;
    // Request 15 lands in batch slot 15 % 8 = 7.
    let pv_host = 0x1000 * 4096 + (layout::PV_DISK_BUF + 7 * 4096) as u64;
    let t = trap.k.machine.mem.read_bytes(trap_host, BLOCK as usize);
    let p = pv.k.machine.mem.read_bytes(pv_host, BLOCK as usize);
    assert_eq!(t, p, "both paths deliver byte-identical block contents");

    // And both match the disk model: request 15 reads LBAs 120..128.
    let mut expect = Vec::new();
    for lba in 120..128 {
        expect.extend_from_slice(&pv.k.machine.ahci().sector(lba));
    }
    assert_eq!(t, expect, "contents match the backing store");
}

/// The chaos suite over the new path: five fault kinds injected into
/// a live PV-ring run; every request completes successfully (the
/// server's degraded-mode recovery absorbs all of it) and the data is
/// correct.
#[test]
fn chaos_plan_over_the_pv_ring_path() {
    let prog = pvdiskload::build(PvDiskLoadParams {
        requests: 32,
        block_bytes: BLOCK,
        batch: BATCH,
    });
    let mut cfg = VmmConfig::full_virt(image(prog), 4096);
    cfg.pv_disk = true;
    let mut sys = System::build(LaunchOptions::supervised(cfg));
    sys.k.machine.set_fault_plan(
        FaultPlan::seeded(0x5eed_c0ff_ee02)
            .with(FaultKind::AhciTaskFileError, 9000, 3)
            .with(FaultKind::AhciLostIrq, 9000, 3)
            .with(FaultKind::AhciSpuriousIrq, 9000, 3)
            .with(FaultKind::AhciStuckDma, 9000, 2)
            .with(FaultKind::IommuFault, 5000, 2),
    );
    let out = sys.run(Some(BUDGET));
    assert_eq!(
        out,
        RunOutcome::Shutdown(0),
        "PV guest finishes under chaos"
    );
    let injected: u64 = sys.k.machine.faults().injected.iter().sum();
    assert!(injected >= 5, "fault plan barely fired ({injected} faults)");

    // The last descriptor of the last batch is bit-exact.
    let host = 0x1000 * 4096 + (layout::PV_DISK_BUF + 7 * 4096) as u64;
    let got = sys.k.machine.mem.read_bytes(host, 16);
    let expect = sys.k.machine.ahci().sector(31 * (BLOCK as u64 / 512));
    assert_eq!(got, expect[..16].to_vec(), "data correct under faults");

    // No request leaked out as a guest-visible error.
    let pv = &sys.vmm().dev().pvdisk;
    assert_eq!(pv.completions, 32);
    assert_eq!(pv.errors, 0);
    assert_eq!(pv.degraded, 0);
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.failed, 0, "no request exhausted the retry budget");
}

/// Driver crash mid-PV-workload: the disk server dies while batches
/// are in flight; the watchdog restarts it, the backend re-registers
/// its channel and resubmits, and the guest finishes with correct
/// data, never seeing the crash.
#[test]
fn driver_crash_mid_pv_workload_recovers() {
    let prog = pvdiskload::build(PvDiskLoadParams {
        requests: 32,
        block_bytes: BLOCK,
        batch: BATCH,
    });
    let mut cfg = VmmConfig::full_virt(image(prog), 4096);
    cfg.pv_disk = true;
    let mut sys = System::build(LaunchOptions::supervised(cfg));

    // Run until the server has completed a couple of requests.
    let srv = sys.disk.unwrap();
    loop {
        let out = sys.run(Some(100_000));
        assert_ne!(
            out,
            RunOutcome::Shutdown(0),
            "guest finished before the crash"
        );
        let done = sys
            .k
            .component_mut::<DiskServer>(srv)
            .unwrap()
            .stats
            .completed;
        if done >= 2 {
            break;
        }
    }

    let srv_pd = PdId(
        sys.k
            .obj
            .pds
            .iter()
            .position(|pd| pd.name == "disk-server")
            .unwrap(),
    );
    sys.k.pd_fault(srv_pd, 0xdead);
    assert_eq!(sys.k.counters.pd_deaths, 1);

    let out = sys.run(Some(BUDGET));
    assert_eq!(out, RunOutcome::Shutdown(0), "guest completed after crash");
    assert_eq!(sys.k.counters.driver_restarts, 1);

    // Data integrity across the restart.
    let host = 0x1000 * 4096 + (layout::PV_DISK_BUF + 7 * 4096) as u64;
    let got = sys.k.machine.mem.read_bytes(host, 16);
    let expect = sys.k.machine.ahci().sector(31 * (BLOCK as u64 / 512));
    assert_eq!(got, expect[..16].to_vec(), "data correct across restart");
    // The guest never saw the crash: both marks, exit code 0.
    let vals: Vec<u32> = sys.k.machine.marks().iter().map(|&(_, v)| v).collect();
    assert_eq!(vals, vec![0x1000, 0x1001]);
    assert_eq!(sys.vmm().dev().pvdisk.errors, 0);
}
