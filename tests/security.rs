//! Attack-containment integration tests: the Section 4.2 claims,
//! verified on the running system.
//!
//! - A virtual machine cannot reach memory outside its host address
//!   space.
//! - A compromised VMM (issuing arbitrary hypercalls) is an ordinary
//!   untrusted application: it cannot touch other domains' resources.
//! - A driver's DMA is confined by the IOMMU to delegated regions and
//!   revocation cuts it off.
//! - Virtual machines hold no hypercall capabilities.
//! - Two VMs with dedicated VMMs are isolated from each other.

use nova_core::cap::Perms;
use nova_core::hypercall::{HcErr, Hypercall};
use nova_core::obj::MemRights;
use nova_core::RunOutcome;
use nova_guest::os::{build_os, OsParams};
use nova_guest::rt;
use nova_vmm::{GuestImage, LaunchOptions, System, Vmm, VmmConfig};
use nova_x86::insn::MemRef;
use nova_x86::reg::Reg;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// A guest that tries to read and write far beyond its RAM (at a
/// guest-physical address that would be another VM's memory if the
/// host page tables did not isolate it).
#[test]
fn guest_cannot_escape_its_address_space() {
    let prog = build_os(OsParams::minimal(), |a, _| {
        // Write through an unbacked GPA: must be dropped, not reach
        // another guest's frames.
        a.mov_ri(Reg::Ebx, 0x7000_0000u32);
        a.mov_mi(MemRef::base_disp(Reg::Ebx, 0), 0x41414141);
        // Read back: unbacked space reads as junk, not as data.
        a.mov_rm(Reg::Eax, MemRef::base_disp(Reg::Ebx, 0));
        rt::emit_exit(a, 9);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048, // 8 MB guest
    )));
    let before = sys.k.machine.mem.read_u32(0x7000_0000);
    let out = sys.run(Some(3_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(9));
    // The write did not land anywhere in host memory at that address.
    assert_eq!(sys.k.machine.mem.read_u32(0x7000_0000), before);
}

/// Two VMs, two VMMs: output and memory stay separate, and one guest
/// shutting down does not stop the other's VMM from existing.
#[test]
fn two_vms_with_dedicated_vmms_are_isolated() {
    let prog_a = build_os(OsParams::minimal(), |a, _| {
        rt::emit_puts(a, "A");
        // Leave a signature in guest A's RAM.
        a.mov_mi(MemRef::abs(0x6000), 0xaaaa_aaaa);
        rt::emit_exit(a, 1);
    });
    let prog_b = build_os(OsParams::minimal(), |a, _| {
        rt::emit_puts(a, "B");
        a.mov_mi(MemRef::abs(0x6000), 0xbbbb_bbbb);
        rt::emit_exit(a, 2);
    });

    let mut opts = LaunchOptions::standard(VmmConfig::full_virt(image(prog_a), 2048));
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);
    let vmm_b = sys.add_vm(VmmConfig::full_virt(image(prog_b), 2048));

    // Run until both guests have shut down (each shutdown stops the
    // world; restart the scheduler until both are done).
    let mut done = 0;
    for _ in 0..4 {
        match sys.run(Some(5_000_000_000)) {
            RunOutcome::Shutdown(_) => done += 1,
            _ => break,
        }
        if done == 2 {
            break;
        }
    }
    assert_eq!(done, 2, "both guests ran to completion");

    let vmm_a = sys.vmm;
    let a = sys.k.component_mut::<Vmm>(vmm_a).unwrap();
    assert_eq!(a.guest_console(), "A");
    let b = sys.k.component_mut::<Vmm>(vmm_b).unwrap();
    assert_eq!(b.guest_console(), "B", "consoles are per-VMM");

    // The guests' frames are disjoint: both signatures exist at their
    // own host locations.
    let a_sig = sys.k.machine.mem.read_u32(0x1000 * 4096 + 0x6000);
    assert_eq!(a_sig, 0xaaaa_aaaa);
    // Guest B's frames start at the next aligned region.
    let b_base = (0x1000u64 + 2048 + 1).next_multiple_of(512);
    let b_sig = sys.k.machine.mem.read_u32(b_base * 4096 + 0x6000);
    assert_eq!(b_sig, 0xbbbb_bbbb);
}

/// A compromised VMM: from the hypervisor's perspective an ordinary
/// untrusted user application. Fuzz-style: it issues hypercalls naming
/// resources it does not own; every one must fail, and other domains'
/// state must be untouched.
#[test]
fn compromised_vmm_cannot_reach_other_domains() {
    let prog = build_os(OsParams::minimal(), |a, _| {
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    sys.run(Some(3_000_000_000));

    // Forge the VMM's identity (it is PdId of the "vmm" domain).
    let vmm_pd = nova_core::PdId(sys.k.obj.pds.iter().position(|p| p.name == "vmm").unwrap());
    let vmm_ec = nova_core::EcId(0); // irrelevant for permission checks
    let evil = nova_core::CompCtx {
        pd: vmm_pd,
        ec: vmm_ec,
        comp: sys.vmm,
    };

    // 1. Delegating memory it does not own fails.
    let r = sys.k.hypercall(
        evil,
        Hypercall::DelegateMem {
            dst_pd: nova_core::kernel::SEL_SELF_PD,
            base: 0x10, // root-owned low memory, never delegated to the VMM
            count: 1,
            rights: MemRights::RW,
            hot: 0x9999,
        },
    );
    assert_eq!(r, Err(HcErr::NotOwner));

    // 2. Revoking memory it does not own is a no-op for others.
    let root_has = sys.k.obj.pd(sys.k.root_pd).mem.lookup(0x10).is_some();
    sys.k
        .hypercall(
            evil,
            Hypercall::RevokeMem {
                base: 0x10,
                count: 1,
                include_self: true,
            },
        )
        .unwrap();
    assert_eq!(
        sys.k.obj.pd(sys.k.root_pd).mem.lookup(0x10).is_some(),
        root_has,
        "root's mapping survives a foreign revoke"
    );

    // 3. Touching the disk server's ports: the VMM holds no I/O space
    // for the AHCI GSI or the PIC.
    assert!(sys
        .k
        .dev_io_read(evil, 0x21, nova_x86::insn::OpSize::Byte)
        .is_none());

    // 4. Using selectors that don't exist in its capability space.
    for sel in [0usize, 7, 500, 100_000] {
        let r = sys.k.hypercall(evil, Hypercall::SmUp { sm: sel });
        assert!(
            matches!(r, Err(HcErr::BadCap) | Err(HcErr::BadPerm)),
            "junk selector {sel} rejected: {r:?}"
        );
    }

    // 5. Recalling an EC it has no capability for.
    let r = sys.k.hypercall(evil, Hypercall::EcRecall { ec: 0x3000 });
    assert_eq!(r, Err(HcErr::BadCap));
}

/// VMs hold only exit-portal capabilities — no PD/EC/SC/SM caps, so
/// no hypercall authority at all (Section 4.2: "VMs cannot perform
/// hypercalls").
#[test]
fn vm_capability_space_has_only_exit_portals() {
    let prog = build_os(OsParams::minimal(), |a, _| {
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    sys.run(Some(3_000_000_000));
    let vm_pd = sys
        .k
        .obj
        .pds
        .iter()
        .position(|p| p.is_vm())
        .map(nova_core::PdId)
        .unwrap();
    for (_sel, cap) in sys.k.obj.pd(vm_pd).caps.iter() {
        match cap.obj {
            nova_core::obj::ObjRef::Pt(_) => {
                assert_eq!(cap.perms.0, Perms::CALL.0, "portal caps are call-only");
            }
            other => panic!("VM holds a non-portal capability: {other:?}"),
        }
    }
}

/// Driver confinement: the disk server's DMA is bounded by what was
/// delegated, and revocation reaches the IOMMU (tested end-to-end in
/// nova-user;ここverified again at the system level after a real run).
#[test]
fn driver_dma_confined_after_real_io() {
    let prog = nova_guest::diskload::build(nova_guest::diskload::DiskLoadParams {
        requests: 2,
        block_bytes: 4096,
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    let out = sys.run(Some(10_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(0));
    assert!(
        sys.k.machine.bus.iommu.faults.is_empty(),
        "no stray DMA during legitimate I/O"
    );
    // After the run the device reaches exactly the disk server's
    // delegated pages (its command memory and the guest's DMA window)
    // and nothing else.
    let ahci = sys.k.machine.dev.ahci;
    // The server's command page is mapped — to the server's own frame.
    let cmd = sys.k.machine.bus.iommu.translate(ahci, 0x10_0000, false);
    assert_eq!(cmd, Some(0x300 * 4096), "command memory, server's frame");
    // Undelegated bus addresses fault: root memory, hypervisor memory.
    for bus in [0x10u64 * 4096, 0x500 * 4096, (96 << 20) - 4096] {
        assert_eq!(
            sys.k.machine.bus.iommu.translate(ahci, bus, true),
            None,
            "bus address {bus:#x} is unreachable for the device"
        );
    }
}

/// Interrupt remapping (Section 4.2): after boot, every device is
/// pinned to its wired vector; a compromised device (or a driver
/// abusing one) cannot assert another device's line.
#[test]
fn iommu_interrupt_remapping_pins_vectors() {
    let prog = build_os(OsParams::minimal(), |a, _| {
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    sys.run(Some(3_000_000_000));

    let ahci = sys.k.machine.dev.ahci;
    let io = &mut sys.k.machine.bus.iommu;
    // Its own wired line passes.
    assert!(io.irq_permitted(ahci, nova_hw::machine::AHCI_IRQ));
    // Spoofing the timer or keyboard vector is blocked and recorded.
    assert!(!io.irq_permitted(ahci, 0));
    assert!(!io.irq_permitted(ahci, 1));
    assert_eq!(io.irq_faults.len(), 2);
}

/// The Section 4.2 hardening extension: a VMM makes the guest's
/// kernel code read-only; a code-injection attempt (write to the code
/// region) kills the VM instead of succeeding.
#[test]
fn kernel_write_protection_stops_code_injection() {
    let attack = || {
        build_os(OsParams::minimal(), |a, _| {
            rt::emit_puts(a, "patching kernel...");
            // Overwrite our own code page (classic code injection).
            a.mov_mi(MemRef::abs(rt::layout::CODE), 0x90909090);
            rt::emit_puts(a, "unprotected!");
            rt::emit_exit(a, 1);
        })
    };

    // Without protection the write lands and the guest "wins".
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(attack()),
        2048,
    )));
    assert_eq!(sys.run(Some(3_000_000_000)), RunOutcome::Shutdown(1));
    assert!(sys.vmm().guest_console().contains("unprotected!"));

    // With the code region read-only, the write is a kill.
    let mut cfg = VmmConfig::full_virt(image(attack()), 2048);
    let code_page = rt::layout::CODE as u64 / 4096;
    cfg.protect_kernel = Some((code_page, 16));
    let mut sys = System::build(LaunchOptions::standard(cfg));
    assert_eq!(
        sys.run(Some(3_000_000_000)),
        RunOutcome::Shutdown(0xfc),
        "injection attempt detected and VM killed"
    );
    let console = sys.vmm().guest_console();
    assert!(console.contains("patching"));
    assert!(
        !console.contains("unprotected!"),
        "execution never passed the blocked write"
    );
    assert_eq!(sys.vmm().guest_exit, Some(0xfc));
}
