//! Virtual-AHCI error paths: malformed guest commands must produce a
//! task-file error for the guest, never crash the VMM or reach the
//! disk server.

use nova_core::RunOutcome;
use nova_guest::os::{build_os, OsParams};
use nova_guest::rt::{self, layout};
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};
use nova_x86::insn::MemRef;
use nova_x86::reg::Reg;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// The guest rings the doorbell with a garbage FIS: the virtual
/// controller reports TFES in P0IS and frees the slot; the machine
/// keeps running.
#[test]
fn malformed_guest_command_reports_task_file_error() {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prog = build_os(
        OsParams {
            paging: false,
            pf_handler: false,
            timer_divisor: None,
            disk: true,
            nic: false,
        },
        |a, _| {
            // Corrupt the command table: FIS type 0x99.
            a.mov_mi(MemRef::abs(layout::DISK_CTBA), 0x0099_0099);
            a.mov_mi(MemRef::abs(layout::DISK_CMD), 1 << 16);
            a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), layout::DISK_CTBA);
            a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
            // Read back the port status and report it as a mark.
            a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
            a.mov_ri(Reg::Edx, 0xf5);
            a.out_dx_eax();
            // The slot must be free again.
            a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0CI));
            a.out_dx_eax();
            rt::emit_exit(a, 0);
        },
    );
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));
    let marks = sys.vmm().guest_marks();
    assert_eq!(marks.len(), 2);
    assert_ne!(marks[0] & (1 << 30), 0, "TFES visible to the guest");
    assert_eq!(marks[1], 0, "command slot freed");
    // Nothing reached the disk server.
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.completed, 0);
}

/// A *physical* task-file error propagates through every layer: the
/// fault injector makes the real controller fail the command three
/// times, the disk server burns its retry budget and completes the
/// request with `STATUS_ERROR`, and the virtual controller translates
/// that into TFES in the guest's P0IS.
#[test]
fn physical_task_file_error_propagates_to_guest() {
    use nova_hw::ahci::regs;
    use nova_hw::fault::{FaultKind, FaultPlan};
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prog = build_os(OsParams::minimal(), |a, _| {
        // A well-formed READ DMA EXT for LBA 5, 8 sectors: H2D FIS,
        // one PRDT entry into DISK_BUF.
        a.mov_mi(MemRef::abs(layout::DISK_CTBA), 0x0025_0027);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 4), 5);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 8), 0);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 12), 8);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 0x80), layout::DISK_BUF);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 0x84), 0);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 0x8c), 4096 - 1);
        a.mov_mi(MemRef::abs(layout::DISK_CMD), 1 << 16);
        a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), layout::DISK_CTBA);
        a.mov_mi(MemRef::abs(base + regs::P0CLB), layout::DISK_CMD);
        a.mov_mi(MemRef::abs(base + regs::P0CLB2), 0);
        a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
        // Interrupts stay off: poll the slot until the virtual
        // controller retires the command, then report P0IS.
        let poll = a.here_label();
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0CI));
        a.cmp_ri(Reg::Eax, 0);
        a.jcc(nova_x86::insn::Cond::Ne, poll);
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    // Every issue of the command hits a task-file error until the cap
    // of three — exactly the server's attempt budget — is spent.
    sys.k
        .machine
        .set_fault_plan(FaultPlan::seeded(7).with(FaultKind::AhciTaskFileError, 65536, 3));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));

    let marks = sys.vmm().guest_marks();
    assert_eq!(marks.len(), 1);
    assert_ne!(marks[0] & (1 << 30), 0, "TFES visible to the guest");

    // The server retried twice, then completed the request degraded.
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.media_retries, 2);
    assert_eq!(stats.failed, 1);
    assert_eq!(
        sys.k.machine.faults().count(FaultKind::AhciTaskFileError),
        3
    );
    assert_eq!(sys.k.counters.request_retries, 2);
    assert_eq!(sys.k.counters.degraded_errors, 1);
}

/// A doorbell with no command list programmed: rejected cleanly.
#[test]
fn doorbell_without_setup_fails_cleanly() {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prog = build_os(OsParams::minimal(), |a, _| {
        a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));
    let marks = sys.vmm().guest_marks();
    assert_ne!(marks[0] & (1 << 30), 0, "error status reported");
}
