//! Virtual-AHCI error paths: malformed guest commands must produce a
//! task-file error for the guest, never crash the VMM or reach the
//! disk server.

use nova_core::RunOutcome;
use nova_guest::os::{build_os, OsParams};
use nova_guest::rt::{self, layout};
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};
use nova_x86::insn::MemRef;
use nova_x86::reg::Reg;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// The guest rings the doorbell with a garbage FIS: the virtual
/// controller reports TFES in P0IS and frees the slot; the machine
/// keeps running.
#[test]
fn malformed_guest_command_reports_task_file_error() {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prog = build_os(
        OsParams {
            disk: true,
            ..OsParams::minimal()
        },
        |a, _| {
            // Corrupt the command table: FIS type 0x99.
            a.mov_mi(MemRef::abs(layout::DISK_CTBA), 0x0099_0099);
            a.mov_mi(MemRef::abs(layout::DISK_CMD), 1 << 16);
            a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), layout::DISK_CTBA);
            a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
            // Read back the port status and report it as a mark.
            a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
            a.mov_ri(Reg::Edx, 0xf5);
            a.out_dx_eax();
            // The slot must be free again.
            a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0CI));
            a.out_dx_eax();
            rt::emit_exit(a, 0);
        },
    );
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));
    let marks = sys.vmm().guest_marks();
    assert_eq!(marks.len(), 2);
    assert_ne!(marks[0] & (1 << 30), 0, "TFES visible to the guest");
    assert_eq!(marks[1], 0, "command slot freed");
    // Nothing reached the disk server.
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.completed, 0);
}

/// A *physical* task-file error propagates through every layer: the
/// fault injector makes the real controller fail the command three
/// times, the disk server burns its retry budget and completes the
/// request with `STATUS_ERROR`, and the virtual controller translates
/// that into TFES in the guest's P0IS.
#[test]
fn physical_task_file_error_propagates_to_guest() {
    use nova_hw::ahci::regs;
    use nova_hw::fault::{FaultKind, FaultPlan};
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prog = build_os(OsParams::minimal(), |a, _| {
        // A well-formed READ DMA EXT for LBA 5, 8 sectors: H2D FIS,
        // one PRDT entry into DISK_BUF.
        a.mov_mi(MemRef::abs(layout::DISK_CTBA), 0x0025_0027);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 4), 5);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 8), 0);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 12), 8);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 0x80), layout::DISK_BUF);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 0x84), 0);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 0x8c), 4096 - 1);
        a.mov_mi(MemRef::abs(layout::DISK_CMD), 1 << 16);
        a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), layout::DISK_CTBA);
        a.mov_mi(MemRef::abs(base + regs::P0CLB), layout::DISK_CMD);
        a.mov_mi(MemRef::abs(base + regs::P0CLB2), 0);
        a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
        // Interrupts stay off: poll the slot until the virtual
        // controller retires the command, then report P0IS.
        let poll = a.here_label();
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0CI));
        a.cmp_ri(Reg::Eax, 0);
        a.jcc(nova_x86::insn::Cond::Ne, poll);
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    // Every issue of the command hits a task-file error until the cap
    // of three — exactly the server's attempt budget — is spent.
    sys.k
        .machine
        .set_fault_plan(FaultPlan::seeded(7).with(FaultKind::AhciTaskFileError, 65536, 3));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));

    let marks = sys.vmm().guest_marks();
    assert_eq!(marks.len(), 1);
    assert_ne!(marks[0] & (1 << 30), 0, "TFES visible to the guest");

    // The server retried twice, then completed the request degraded.
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.media_retries, 2);
    assert_eq!(stats.failed, 1);
    assert_eq!(
        sys.k.machine.faults().count(FaultKind::AhciTaskFileError),
        3
    );
    assert_eq!(sys.k.counters.request_retries, 2);
    assert_eq!(sys.k.counters.degraded_errors, 1);
}

/// Builds a polling guest that issues one READ DMA EXT through the
/// virtual AHCI with an arbitrary PRDT, waits for the slot to retire,
/// and reports P0IS as a mark.
fn one_read(lba: u64, sectors: u32, prdt: &[(u32, u32)]) -> nova_guest::os::Program {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prdt = prdt.to_vec();
    build_os(OsParams::minimal(), move |a, _| {
        // H2D FIS, READ DMA EXT; all six LBA bytes (4, 5, 6, 8, 9, 10).
        a.mov_mi(MemRef::abs(layout::DISK_CTBA), 0x0025_0027);
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 4), (lba & 0xff_ffff) as u32);
        a.mov_mi(
            MemRef::abs(layout::DISK_CTBA + 8),
            ((lba >> 24) & 0xff_ffff) as u32,
        );
        a.mov_mi(MemRef::abs(layout::DISK_CTBA + 12), sectors);
        for (i, &(dba, bytes)) in prdt.iter().enumerate() {
            let e = layout::DISK_CTBA + 0x80 + 16 * i as u32;
            a.mov_mi(MemRef::abs(e), dba);
            a.mov_mi(MemRef::abs(e + 4), 0);
            a.mov_mi(MemRef::abs(e + 12), bytes - 1);
        }
        a.mov_mi(MemRef::abs(layout::DISK_CMD), (prdt.len() as u32) << 16);
        a.mov_mi(MemRef::abs(layout::DISK_CMD + 8), layout::DISK_CTBA);
        a.mov_mi(MemRef::abs(base + regs::P0CLB), layout::DISK_CMD);
        a.mov_mi(MemRef::abs(base + regs::P0CLB2), 0);
        a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
        let poll = a.here_label();
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0CI));
        a.cmp_ri(Reg::Eax, 0);
        a.jcc(nova_x86::insn::Cond::Ne, poll);
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        rt::emit_exit(a, 0);
    })
}

/// Runs `prog` to completion and returns the finished system plus the
/// single P0IS mark.
fn run_read(prog: nova_guest::os::Program) -> (System, u32) {
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));
    let marks = sys.vmm().guest_marks();
    assert_eq!(marks.len(), 1);
    let is = marks[0];
    (sys, is)
}

fn guest_bytes(sys: &System, gpa: u32, len: usize) -> Vec<u8> {
    sys.k
        .machine
        .mem
        .read_bytes(0x1000 * 4096 + gpa as u64, len)
}

/// Regression: a data buffer at an odd byte offset must transfer
/// correctly. The old DBA handling rounded to page granularity, so
/// the in-page offset was lost and data landed 3 bytes early.
#[test]
fn unaligned_buffer_transfers_to_exact_address() {
    let buf = layout::DISK_BUF + 3;
    let (mut sys, is) = run_read(one_read(9, 8, &[(buf, 4096)]));
    assert_eq!(is & (1 << 30), 0, "no TFES: {is:#x}");
    let mut expect = Vec::new();
    for lba in 9..17 {
        expect.extend_from_slice(&sys.k.machine.ahci().sector(lba));
    }
    assert_eq!(guest_bytes(&sys, buf, 4096), expect);
    // The byte before the buffer was not clobbered.
    assert_eq!(guest_bytes(&sys, buf - 1, 1), vec![0]);
}

/// Regression: a command whose PRDT scatters one transfer across
/// several discontiguous entries must fill each segment in order (the
/// old code only honored entry 0).
#[test]
fn multi_prdt_entries_scatter_across_buffers() {
    let seg0 = layout::DISK_BUF;
    let seg1 = layout::DISK_BUF + 0x3000;
    let seg2 = layout::DISK_BUF + 0x7100;
    let (mut sys, is) = run_read(one_read(
        100,
        8,
        &[(seg0, 1024), (seg1, 1024), (seg2, 2048)],
    ));
    assert_eq!(is & (1 << 30), 0, "no TFES: {is:#x}");
    let mut expect = Vec::new();
    for lba in 100..108 {
        expect.extend_from_slice(&sys.k.machine.ahci().sector(lba));
    }
    let mut got = guest_bytes(&sys, seg0, 1024);
    got.extend(guest_bytes(&sys, seg1, 1024));
    got.extend(guest_bytes(&sys, seg2, 2048));
    assert_eq!(got, expect);
}

/// Regression: LBA bytes 4 and 5 of the upper word (FIS bytes 9/10)
/// must be decoded — a read beyond the 2 TB boundary (sector 2^32)
/// previously aliased back into the low disk.
#[test]
fn lba_beyond_2tb_uses_all_six_bytes() {
    let lba = (1u64 << 32) + 0x1234; // > 2 TB in 512-byte sectors
    let (mut sys, is) = run_read(one_read(lba, 1, &[(layout::DISK_BUF, 512)]));
    assert_eq!(is & (1 << 30), 0, "no TFES: {is:#x}");
    let expect = sys.k.machine.ahci().sector(lba);
    assert_eq!(guest_bytes(&sys, layout::DISK_BUF, 512), expect);
    // Specifically *not* the aliased low sector.
    assert_ne!(
        guest_bytes(&sys, layout::DISK_BUF, 512),
        sys.k.machine.ahci().sector(0x1234)
    );
}

/// A doorbell with no command list programmed: rejected cleanly.
#[test]
fn doorbell_without_setup_fails_cleanly() {
    use nova_hw::ahci::regs;
    let base = nova_hw::machine::AHCI_BASE as u32;
    let prog = build_os(OsParams::minimal(), |a, _| {
        a.mov_mi(MemRef::abs(base + regs::P0CI), 1);
        a.mov_rm(Reg::Eax, MemRef::abs(base + regs::P0IS));
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        rt::emit_exit(a, 0);
    });
    let mut sys = System::build(LaunchOptions::standard(VmmConfig::full_virt(
        image(prog),
        2048,
    )));
    assert_eq!(sys.run(Some(5_000_000_000)), RunOutcome::Shutdown(0));
    let marks = sys.vmm().guest_marks();
    assert_ne!(marks[0] & (1 << 30), 0, "error status reported");
}
