//! Chaos tests: the full stack driven under seeded fault injection,
//! plus the supervision/recovery path (watchdog -> DestroyPd ->
//! respawn -> re-registration) exercised end-to-end. The platform's
//! fault injector is deterministic, so every assertion here is exact:
//! the same seed reproduces the same fault schedule, and the recovery
//! counters must balance the injected counts.

use nova_core::cap::{CapSel, Perms};
use nova_core::kernel::SEL_SELF_EC;
use nova_core::obj::MemRights;
use nova_core::utcb::{Utcb, XferItem};
use nova_core::{CompCtx, CompId, Component, Hypercall, Kernel, KernelConfig, PdId, RunOutcome};
use nova_guest::diskload::{self, DiskLoadParams};
use nova_guest::os::{build_os, OsParams};
use nova_guest::rt;
use nova_hw::fault::{FaultKind, FaultPlan};
use nova_hw::machine::{Machine, MachineConfig, AHCI_BASE};
use nova_user::disk::{DiskServer, DiskServerConfig};
use nova_user::proto::disk as dproto;
use nova_user::root::{DiskSupervision, RootOps, RootPm, SupervisedClient};
use nova_vmm::{GuestImage, LaunchOptions, System, VmmConfig};
use nova_x86::insn::{AluOp, Cond};
use nova_x86::reg::Reg;
use nova_x86::MemRef;

fn image(prog: nova_guest::os::Program) -> GuestImage {
    GuestImage {
        bytes: prog.bytes,
        load_gpa: prog.load_gpa,
        entry: prog.entry,
        stack: prog.stack,
    }
}

/// Number of disk requests the chaos guest issues.
const CHAOS_REQUESTS: u32 = 12;
/// Iterations of the co-resident integrity guest.
const WITNESS_ITERS: u32 = 6;

/// Checksum the witness guest computes on iteration `iter` (fill a
/// page with a rolling pattern, then sum it).
fn witness_checksum(iter: u32) -> u32 {
    let mut v = 0x1234_5678u32.wrapping_add(iter);
    let mut s = 0u32;
    for _ in 0..1024 {
        s = s.wrapping_add(v);
        v = v.wrapping_add(0x9e37_79b9);
    }
    s
}

/// A co-resident VM that repeatedly fills a page of its own RAM with
/// a pattern, checksums it, and reports the checksum through the mark
/// port — an integrity witness: faults injected into the disk path of
/// the *other* VM must never perturb these values.
fn witness_guest() -> nova_guest::os::Program {
    build_os(OsParams::minimal(), |a, _| {
        a.mov_ri(Reg::Esi, 0);
        let iter = a.here_label();
        // Fill 0x8000..0x9000 with pattern(iter).
        a.mov_ri(Reg::Edi, 0x8000);
        a.mov_ri(Reg::Ecx, 1024);
        a.mov_ri(Reg::Eax, 0x1234_5678);
        a.alu_rr(AluOp::Add, Reg::Eax, Reg::Esi);
        let fill = a.here_label();
        a.mov_mr(MemRef::base_disp(Reg::Edi, 0), Reg::Eax);
        a.add_ri(Reg::Eax, 0x9e37_79b9);
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, fill);
        // Checksum it back.
        a.mov_ri(Reg::Edi, 0x8000);
        a.mov_ri(Reg::Ecx, 1024);
        a.mov_ri(Reg::Ebx, 0);
        let sum = a.here_label();
        a.alu_rm(AluOp::Add, Reg::Ebx, MemRef::base_disp(Reg::Edi, 0));
        a.add_ri(Reg::Edi, 4);
        a.dec_r(Reg::Ecx);
        a.jcc(Cond::Ne, sum);
        // Report via the mark port.
        a.mov_rr(Reg::Eax, Reg::Ebx);
        a.mov_ri(Reg::Edx, 0xf5);
        a.out_dx_eax();
        a.inc_r(Reg::Esi);
        a.cmp_ri(Reg::Esi, WITNESS_ITERS);
        a.jcc(Cond::B, iter);
        // Done: spin (the disk guest's exit shuts the system down).
        let top = a.here_label();
        a.jmp(top);
    })
}

/// Builds the two-VM chaos system: a supervised disk-server stack
/// with the diskload guest, plus the co-resident witness VM.
fn chaos_system(plan: Option<FaultPlan>) -> System {
    let p = DiskLoadParams {
        requests: CHAOS_REQUESTS,
        block_bytes: 4096,
    };
    let mut opts = LaunchOptions::supervised(VmmConfig::full_virt(image(diskload::build(p)), 2048));
    opts.machine.ram = 128 << 20;
    let mut sys = System::build(opts);
    sys.add_vm(VmmConfig::full_virt(image(witness_guest()), 1024));
    if let Some(plan) = plan {
        sys.k.machine.set_fault_plan(plan);
    }
    sys
}

/// The five-kind chaos plan. Small per-kind caps keep every faulted
/// request inside the server's retry budget, so the guest must stay
/// fault-oblivious.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with(FaultKind::AhciTaskFileError, 9000, 3)
        .with(FaultKind::AhciLostIrq, 9000, 3)
        .with(FaultKind::AhciSpuriousIrq, 9000, 3)
        .with(FaultKind::AhciStuckDma, 9000, 2)
        .with(FaultKind::IommuFault, 5000, 2)
}

const CHAOS_SEED: u64 = 0x5eed_c0ff_ee01;

/// Mark values emitted by the witness (everything except diskload's
/// begin/end marks).
fn witness_marks(sys: &System) -> Vec<u32> {
    sys.k
        .machine
        .marks()
        .iter()
        .map(|&(_, v)| v)
        .filter(|&v| v != 0x1000 && v != 0x1001)
        .collect()
}

/// Tentpole acceptance: five fault kinds injected into a live run;
/// the guest completes with correct data, the co-resident VM is
/// untouched, and the injected counts balance the recovery counters.
#[test]
fn chaos_five_fault_kinds_guest_unaffected() {
    let mut sys = chaos_system(Some(chaos_plan(CHAOS_SEED)));
    let out = sys.run(Some(60_000_000_000));
    assert_eq!(out, RunOutcome::Shutdown(0), "disk guest finishes cleanly");

    // All five enabled kinds actually fired.
    let injected = sys.k.machine.faults().injected;
    let inj = |k: FaultKind| injected[k as usize];
    for kind in [
        FaultKind::AhciTaskFileError,
        FaultKind::AhciLostIrq,
        FaultKind::AhciSpuriousIrq,
        FaultKind::AhciStuckDma,
        FaultKind::IommuFault,
    ] {
        assert!(inj(kind) >= 1, "{kind:?} never fired; pick another seed");
    }
    assert_eq!(sys.k.machine.faults().count(FaultKind::NicPacketDrop), 0);

    // The last block the guest read is bit-exact despite the chaos.
    let host = 0x1000 * 4096 + rt::layout::DISK_BUF as u64;
    let got = sys.k.machine.mem.read_bytes(host, 512);
    let lba_last = (CHAOS_REQUESTS as u64 - 1) * (4096 / 512);
    let expect = sys.k.machine.ahci().sector(lba_last);
    assert_eq!(got, expect, "guest data correct under fault injection");

    // The co-resident witness VM computed exactly the checksums a
    // fault-free machine computes.
    let marks = witness_marks(&sys);
    let expected: Vec<u32> = (0..WITNESS_ITERS).map(witness_checksum).collect();
    assert_eq!(marks, expected, "co-resident VM unperturbed");
    let baseline = {
        let mut sys = chaos_system(None);
        assert_eq!(sys.run(Some(60_000_000_000)), RunOutcome::Shutdown(0));
        witness_marks(&sys)
    };
    assert_eq!(marks, baseline, "witness marks identical to fault-free run");

    // Injected counters balance recovery/degradation counters.
    let stats = sys.disk_server().unwrap().stats;
    assert_eq!(stats.accepted, CHAOS_REQUESTS as u64, "no vAHCI resubmits");
    assert_eq!(stats.accepted, stats.completed);
    assert_eq!(stats.failed, 0, "no request exhausted its retry budget");
    assert_eq!(stats.rejected, 0);
    // Every task-file error — injected directly or produced by an
    // IOMMU-blocked DMA — was retried successfully.
    assert_eq!(
        stats.media_retries,
        inj(FaultKind::AhciTaskFileError) + inj(FaultKind::IommuFault),
        "every error completion was retried"
    );
    // Every wedged DMA was recovered by a controller reset.
    assert_eq!(stats.controller_resets, inj(FaultKind::AhciStuckDma));
    // Every blocked DMA transaction was logged by the IOMMU.
    assert_eq!(
        sys.k.machine.bus.iommu.faults.len() as u64,
        inj(FaultKind::IommuFault)
    );
    // Lost completions were recovered — either by the timeout poll or
    // absorbed into a conveniently-timed spurious interrupt (in which
    // case neither counter ticks, pairwise).
    assert!(stats.lost_irq_recovered <= inj(FaultKind::AhciLostIrq));
    assert!(stats.spurious <= inj(FaultKind::AhciSpuriousIrq));
    assert_eq!(
        stats.lost_irq_recovered + stats.spurious,
        inj(FaultKind::AhciLostIrq) + inj(FaultKind::AhciSpuriousIrq)
            - 2 * (inj(FaultKind::AhciLostIrq) - stats.lost_irq_recovered),
        "lost/spurious interactions pair up"
    );
    // The supervisor never had to restart anything: degraded-mode
    // recovery handled every fault below the watchdog threshold.
    assert_eq!(sys.k.counters.driver_restarts, 0);
    assert_eq!(sys.k.counters.pd_deaths, 0);
    assert_eq!(
        sys.k.counters.request_retries,
        stats.media_retries + {
            // Stuck-DMA re-issues are counted as retries too.
            stats.controller_resets
        }
    );
}

/// Determinism: the same seed over the same workload reproduces the
/// same fault schedule, cycle for cycle, and the same guest-visible
/// outcome.
#[test]
fn same_seed_reproduces_fault_schedule() {
    let run = || {
        let mut sys = chaos_system(Some(chaos_plan(CHAOS_SEED)));
        assert_eq!(sys.run(Some(60_000_000_000)), RunOutcome::Shutdown(0));
        sys
    };
    let a = run();
    let b = run();
    assert_eq!(a.k.machine.faults().injected, b.k.machine.faults().injected);
    assert_eq!(a.k.machine.faults().trace, b.k.machine.faults().trace);
    assert!(!a.k.machine.faults().trace.is_empty());
    assert_eq!(a.k.machine.clock, b.k.machine.clock);
    assert_eq!(a.k.machine.marks(), b.k.machine.marks());

    // A different seed produces a different schedule (the plans are
    // probabilistic draws, not fixed scripts).
    let mut c = chaos_system(Some(chaos_plan(CHAOS_SEED + 1)));
    assert_eq!(c.run(Some(60_000_000_000)), RunOutcome::Shutdown(0));
    assert_ne!(a.k.machine.faults().trace, c.k.machine.faults().trace);
}

/// Full-stack supervision: the disk server is killed mid-workload;
/// the watchdog fires, root destroys and respawns it, the VMM
/// re-registers its channel and resubmits, and the guest finishes
/// with correct data, never seeing the crash.
#[test]
fn driver_crash_mid_workload_recovers_end_to_end() {
    let p = DiskLoadParams {
        requests: 10,
        block_bytes: 4096,
    };
    let mut sys = System::build(LaunchOptions::supervised(VmmConfig::full_virt(
        image(diskload::build(p)),
        2048,
    )));

    // Run until the server has completed a couple of requests.
    let srv = sys.disk.unwrap();
    loop {
        let out = sys.run(Some(100_000));
        assert_ne!(
            out,
            RunOutcome::Shutdown(0),
            "guest finished before the crash"
        );
        let done = sys
            .k
            .component_mut::<DiskServer>(srv)
            .unwrap()
            .stats
            .completed;
        if done >= 2 {
            break;
        }
    }

    // Kill the driver domain the way a wild write would: a fault that
    // takes down the whole PD.
    let srv_pd = PdId(
        sys.k
            .obj
            .pds
            .iter()
            .position(|pd| pd.name == "disk-server")
            .unwrap(),
    );
    sys.k.pd_fault(srv_pd, 0xdead);
    assert_eq!(sys.k.counters.pd_deaths, 1);

    // The system recovers on its own: watchdog -> root respawn ->
    // VMM re-registration -> resubmission of the in-flight request.
    let out = sys.run(Some(60_000_000_000));
    assert_eq!(
        out,
        RunOutcome::Shutdown(0),
        "guest completed after the crash"
    );
    assert_eq!(sys.k.counters.driver_restarts, 1);

    // Data integrity across the restart: the last block is correct.
    let host = 0x1000 * 4096 + rt::layout::DISK_BUF as u64;
    let got = sys.k.machine.mem.read_bytes(host, 512);
    let expect = sys.k.machine.ahci().sector(9 * (4096 / 512));
    assert_eq!(got, expect, "guest data correct across driver restart");
    // Both benchmark marks arrived: the guest never saw the crash.
    let vals: Vec<u32> = sys.k.machine.marks().iter().map(|&(_, v)| v).collect();
    assert_eq!(vals, vec![0x1000, 0x1001]);
}

/// A test client that counts its completion/restart signals.
#[derive(Default)]
struct TestClient {
    signals: u64,
}

impl Component for TestClient {
    fn name(&self) -> &str {
        "test-client"
    }
    fn on_call(&mut self, _k: &mut Kernel, _c: CompCtx, _p: u64, _u: &mut Utcb) {}
    fn on_signal(&mut self, _k: &mut Kernel, _c: CompCtx, _sm: nova_core::SmId) {
        self.signals += 1;
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Client-side selector for the restart-notification semaphore.
const CL_SEL_RESTART: CapSel = 0x42;

struct Rig {
    k: Kernel,
    client_ctx: CompCtx,
    client_comp: CompId,
    ahci_dev: usize,
    cmd_va: u64,
}

/// Boots root + supervised disk server + a bare client, with the full
/// supervision wiring the system builder performs: root SC, watchdog
/// semaphore, `WatchdogArm`, restart semaphore delegated DOWN to the
/// client, and the service portals at the protocol's well-known
/// client selectors (so the restart recipe re-delegates to the same
/// slots).
fn supervised_rig() -> Rig {
    let m = Machine::new(MachineConfig::core_i7(64 << 20));
    let mut k = Kernel::new(m, KernelConfig::default());
    let (root, root_ec) = k.load_component(k.root_pd, 0, Box::new(RootPm::new()));
    k.start_component(root, root_ec);
    let root_ctx = k.component_mut::<RootPm>(root).unwrap().ctx.unwrap();

    let cfg = DiskServerConfig::supervised();
    let ahci_dev = k.machine.dev.ahci;
    let mut ops = RootOps::new(&mut k, root_ctx);
    let (srv_sel, srv_pd) = ops.create_pd("disk-server", None).unwrap();
    ops.grant_mem(
        srv_sel,
        AHCI_BASE / 4096,
        1,
        MemRights::RW,
        cfg.mmio_va / 4096,
    )
    .unwrap();
    ops.grant_mem(srv_sel, 0x300, 2, MemRights::RW_DMA, cfg.cmd_va / 4096)
        .unwrap();
    ops.grant_gsi(srv_sel, cfg.gsi).unwrap();
    ops.assign_device(srv_sel, ahci_dev).unwrap();
    let (srv_comp, srv_ec) = k.load_component(srv_pd, 0, Box::new(DiskServer::new(cfg)));
    k.start_component(srv_comp, srv_ec);
    let srv_ctx = CompCtx {
        pd: srv_pd,
        ec: srv_ec,
        comp: srv_comp,
    };
    for (dst, id) in [
        (0x20, dproto::PORTAL_REGISTER),
        (0x21, dproto::PORTAL_REQUEST),
    ] {
        k.hypercall(
            srv_ctx,
            Hypercall::CreatePt {
                ec: SEL_SELF_EC,
                mtd: 0,
                id,
                dst,
            },
        )
        .unwrap();
    }

    // The client: a PD with DMA-able memory and an SC.
    let mut ops = RootOps::new(&mut k, root_ctx);
    let (cl_sel, cl_pd) = ops.create_pd("client", None).unwrap();
    ops.grant_mem(cl_sel, 0x400, 64, MemRights::RW_DMA, 0)
        .unwrap();
    let (client_comp, client_ec) = k.load_component(cl_pd, 0, Box::<TestClient>::default());
    k.start_component(client_comp, client_ec);
    let client_ctx = CompCtx {
        pd: cl_pd,
        ec: client_ec,
        comp: client_comp,
    };
    let mut ops = RootOps::new(&mut k, root_ctx);
    ops.grant_cap(srv_sel, cl_sel, Perms::ALL, 0x30).unwrap();
    for (from, to) in [
        (0x20, dproto::CLIENT_SEL_REG as CapSel),
        (0x21, dproto::CLIENT_SEL_REQ as CapSel),
    ] {
        k.hypercall(
            srv_ctx,
            Hypercall::DelegateCap {
                dst_pd: 0x30,
                sel: from,
                perms: Perms::CALL,
                hot: to,
            },
        )
        .unwrap();
    }
    k.hypercall(
        client_ctx,
        Hypercall::CreateSc {
            ec: SEL_SELF_EC,
            prio: 16,
            quantum: 100_000,
            dst: 0x22,
        },
    )
    .unwrap();

    // Supervision wiring (what `System::build` does with `supervise`).
    let (sc_sel, wd_sm_sel, restart_sel) = {
        let rp = k.component_mut::<RootPm>(root).unwrap();
        (rp.alloc_sel(), rp.alloc_sel(), rp.alloc_sel())
    };
    k.hypercall(
        root_ctx,
        Hypercall::CreateSc {
            ec: SEL_SELF_EC,
            prio: 48,
            quantum: 100_000,
            dst: sc_sel,
        },
    )
    .unwrap();
    k.hypercall(
        root_ctx,
        Hypercall::CreateSm {
            count: 0,
            dst: wd_sm_sel,
        },
    )
    .unwrap();
    k.hypercall(root_ctx, Hypercall::SmBind { sm: wd_sm_sel })
        .unwrap();
    let wd_sm = nova_core::SmId(k.obj.sms.len() - 1);
    k.hypercall(
        root_ctx,
        Hypercall::WatchdogArm {
            pd: srv_sel,
            sm: wd_sm_sel,
            timeout: 8_000_000,
        },
    )
    .unwrap();
    k.hypercall(
        root_ctx,
        Hypercall::CreateSm {
            count: 0,
            dst: restart_sel,
        },
    )
    .unwrap();
    let mut ops = RootOps::new(&mut k, root_ctx);
    ops.grant_cap(cl_sel, restart_sel, Perms::DOWN, CL_SEL_RESTART)
        .unwrap();
    k.hypercall(client_ctx, Hypercall::SmBind { sm: CL_SEL_RESTART })
        .unwrap();
    let cmd_va = cfg.cmd_va;
    let rp = k.component_mut::<RootPm>(root).unwrap();
    rp.supervision = Some(DiskSupervision {
        srv_sel,
        srv_ctx,
        wd_sm_sel,
        wd_sm,
        timeout: 8_000_000,
        cfg,
        ahci_dev,
        mmio_page: AHCI_BASE / 4096,
        cmd_frames: 0x300,
        clients: vec![SupervisedClient {
            vmm_sel: cl_sel,
            restart_sm_sel: restart_sel,
        }],
        restarts: 0,
    });

    Rig {
        k,
        client_ctx,
        client_comp,
        ahci_dev,
        cmd_va,
    }
}

/// Two-phase channel registration against whatever server currently
/// answers the well-known register portal.
fn register(r: &mut Rig) -> u64 {
    // The completion semaphore survives restarts (it is the client's
    // own object); creating it is idempotent per selector.
    let _ = r.k.hypercall(
        r.client_ctx,
        Hypercall::CreateSm {
            count: 0,
            dst: 0x40,
        },
    );
    let _ = r.k.hypercall(r.client_ctx, Hypercall::SmBind { sm: 0x40 });

    let mut utcb = Utcb::new();
    r.k.ipc_call(r.client_ctx, dproto::CLIENT_SEL_REG as CapSel, &mut utcb)
        .unwrap();
    let client_id = utcb.word(0);
    assert_ne!(client_id, u64::MAX, "server full");

    let cfg = DiskServerConfig::standard();
    let mut utcb = Utcb::new();
    utcb.set_msg(&[client_id]);
    utcb.xfer.push(XferItem::Mem {
        base: 1,
        count: 1,
        rights: MemRights::RW,
        hot: cfg.ring_base_page + client_id,
    });
    utcb.xfer.push(XferItem::Cap {
        sel: 0x40,
        perms: Perms::UP,
        hot: DiskServerConfig::client_sm_sel(client_id as usize),
    });
    r.k.ipc_call(r.client_ctx, dproto::CLIENT_SEL_REG as CapSel, &mut utcb)
        .unwrap();
    client_id
}

fn submit_read(r: &mut Rig, client: u64, lba: u64, sectors: u32, window: u64, tag: u64) -> u64 {
    let mut utcb = Utcb::new();
    utcb.set_msg(&[
        client,
        dproto::OP_READ,
        lba,
        sectors as u64,
        tag,
        0,
        1,
        window * 4096,
        sectors as u64 * 512,
    ]);
    let pages = (sectors as u64 * 512).div_ceil(4096);
    utcb.xfer.push(XferItem::Mem {
        base: 8,
        count: pages,
        rights: MemRights::RW_DMA,
        hot: window,
    });
    r.k.ipc_call(r.client_ctx, dproto::CLIENT_SEL_REQ as CapSel, &mut utcb)
        .unwrap();
    utcb.word(0)
}

fn client_signals(r: &mut Rig) -> u64 {
    let id = r.client_comp;
    r.k.component_mut::<TestClient>(id).unwrap().signals
}

/// Driver restart at the protocol level: after the crash, `DestroyPd`
/// has revoked the dead server's IOMMU mappings (client DMA window
/// included), the respawned server's own command memory is mapped
/// again, and a client that re-registers gets correct data with no
/// stale state.
#[test]
fn restart_revokes_iommu_mappings_and_client_reregisters() {
    let mut r = supervised_rig();
    let client = register(&mut r);
    let window = 0x500u64;
    assert_eq!(submit_read(&mut r, client, 100, 8, window, 7), dproto::OK);
    assert_eq!(r.k.run(Some(100_000_000)), RunOutcome::Budget);
    assert_eq!(client_signals(&mut r), 1, "first request completed");
    let got = r.k.mem_read(r.client_ctx, 8 * 4096, 16).unwrap();
    assert_eq!(got, r.k.machine.ahci().sector(100)[..16].to_vec());

    // The delegated DMA window stands in the IOMMU while the server
    // lives...
    let dev = r.ahci_dev;
    assert!(r
        .k
        .machine
        .bus
        .iommu
        .translate(dev, window * 4096, true)
        .is_some());
    assert!(r
        .k
        .machine
        .bus
        .iommu
        .translate(dev, r.cmd_va, true)
        .is_some());

    // Crash the server; the death notification fires the watchdog and
    // root restarts it.
    let srv_pd = PdId(
        r.k.obj
            .pds
            .iter()
            .position(|pd| pd.name == "disk-server")
            .unwrap(),
    );
    r.k.pd_fault(srv_pd, 0xdead);
    let before = client_signals(&mut r);
    assert_eq!(r.k.run(Some(100_000_000)), RunOutcome::Budget);
    assert_eq!(r.k.counters.driver_restarts, 1);

    // ...and is gone once the PD died: DestroyPd revoked every mapping
    // the dead server held, the stale client window included. The new
    // incarnation's command memory is mapped afresh at the same
    // domain address.
    assert!(
        r.k.machine
            .bus
            .iommu
            .translate(dev, window * 4096, true)
            .is_none(),
        "stale client DMA window revoked at the IOMMU"
    );
    assert!(
        r.k.machine
            .bus
            .iommu
            .translate(dev, r.cmd_va, true)
            .is_some(),
        "respawned server's command memory mapped"
    );
    // The client was told to re-register (restart semaphore).
    assert!(client_signals(&mut r) > before);

    // Re-register against the new incarnation and read again: fresh
    // ring, fresh windows, correct data, no guest-visible corruption.
    r.k.mem_write(r.client_ctx, 4096, &[0u8; 4096]);
    let client = register(&mut r);
    assert_eq!(client, 0, "fresh server has a fresh client table");
    let sig = client_signals(&mut r);
    assert_eq!(submit_read(&mut r, client, 555, 8, window, 9), dproto::OK);
    assert_eq!(r.k.run(Some(100_000_000)), RunOutcome::Budget);
    assert_eq!(client_signals(&mut r), sig + 1, "completion after restart");
    let got = r.k.mem_read(r.client_ctx, 8 * 4096, 16).unwrap();
    assert_eq!(got, r.k.machine.ahci().sector(555)[..16].to_vec());
    // Ring record 0 of the zeroed ring: tag 9, status OK.
    assert_eq!(r.k.mem_read_u32(r.client_ctx, 4096).unwrap(), 9);
    assert_eq!(r.k.mem_read_u32(r.client_ctx, 4096 + 4).unwrap(), 0);
    assert_eq!(
        r.k.component_mut::<RootPm>(CompId(0))
            .map(|rp| rp.supervision.as_ref().unwrap().restarts),
        Some(1)
    );
}
