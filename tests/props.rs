//! Randomized tests over the core data structures and invariants:
//! assembler/decoder agreement, ALU semantics, TLB coherence, the
//! mapping database's revocation invariants, capability-space
//! behaviour, and IOMMU confinement.
//!
//! A small local xorshift PRNG replaces an external property-testing
//! crate so the suite builds with no registry access; every test is
//! seeded and therefore fully deterministic.

use nova_core::mdb::MapDb;
use nova_hw::iommu::Iommu;
use nova_hw::tlb::{Tlb, TlbEntry};
use nova_x86::decode::decode;
use nova_x86::insn::{AluOp, MemRef, Op, Operand};
use nova_x86::reg::{Reg, Regs};
use nova_x86::Asm;

/// Deterministic split-mix/xorshift generator for test inputs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        // xorshift64* — plenty for test-case generation.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn reg(&mut self) -> Reg {
        Reg::ALL[self.below(Reg::ALL.len() as u64) as usize]
    }
    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

const CASES: usize = 256;

/// Whatever the assembler emits, the decoder parses back to the same
/// operation, operands and length.
#[test]
fn assembler_decoder_roundtrip_mov_ri() {
    let mut rng = Rng::new(0x1001);
    for _ in 0..CASES {
        let r = rng.reg();
        let imm = rng.u32();
        let mut a = Asm::new(0);
        a.mov_ri(r, imm);
        let code = a.finish();
        let i = decode(&code).unwrap();
        assert_eq!(i.op, Op::Mov);
        assert_eq!(i.dst, Operand::Reg(r));
        assert_eq!(i.src, Operand::Imm(imm));
        assert_eq!(i.len as usize, code.len());
    }
}

#[test]
fn assembler_decoder_roundtrip_alu() {
    let ops = [
        AluOp::Add,
        AluOp::Or,
        AluOp::Adc,
        AluOp::Sbb,
        AluOp::And,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Cmp,
    ];
    let mut rng = Rng::new(0x1002);
    for _ in 0..CASES {
        let op = rng.pick(&ops);
        let dst = rng.reg();
        let src = rng.reg();
        let imm = rng.u32();
        let mut a = Asm::new(0);
        a.alu_rr(op, dst, src);
        a.alu_ri(op, dst, imm);
        let code = a.finish();
        let i1 = decode(&code).unwrap();
        assert_eq!(i1.op, Op::Alu(op));
        assert_eq!(i1.dst, Operand::Reg(dst));
        assert_eq!(i1.src, Operand::Reg(src));
        let i2 = decode(&code[i1.len as usize..]).unwrap();
        assert_eq!(i2.op, Op::Alu(op));
        assert_eq!(i2.src, Operand::Imm(imm));
    }
}

#[test]
fn assembler_decoder_roundtrip_mem() {
    let mut rng = Rng::new(0x1003);
    for _ in 0..CASES {
        let base = rng.reg();
        let disp = (rng.below(0x20000) as i32) - 0x10000;
        let r = rng.reg();
        let m = MemRef::base_disp(base, disp);
        let mut a = Asm::new(0);
        a.mov_rm(r, m);
        a.mov_mr(m, r);
        let code = a.finish();
        let i1 = decode(&code).unwrap();
        assert_eq!(i1.src, Operand::Mem(m));
        let i2 = decode(&code[i1.len as usize..]).unwrap();
        assert_eq!(i2.dst, Operand::Mem(m));
    }
}

/// The decoder never panics on arbitrary bytes and always reports a
/// length within the architectural limit.
#[test]
fn decoder_total_on_junk() {
    let mut rng = Rng::new(0x1004);
    for _ in 0..2048 {
        let len = 1 + rng.below(19) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        if let Ok(i) = decode(&bytes) {
            assert!(i.len as usize <= nova_x86::decode::MAX_INSN_LEN);
            assert!(i.len as usize <= bytes.len());
        }
    }
}

mod exec_env {
    use nova_x86::exec::{Env, Fault};
    use nova_x86::insn::OpSize;

    /// A memory-less environment for pure register tests.
    pub struct NoMem;
    impl Env for NoMem {
        type Err = Fault;
        fn read_mem(&mut self, _: u32, _: OpSize) -> Result<u32, Fault> {
            Ok(0)
        }
        fn write_mem(&mut self, _: u32, _: OpSize, _: u32) -> Result<(), Fault> {
            Ok(())
        }
        fn io_in(&mut self, _: u16, _: OpSize) -> Result<u32, Fault> {
            Ok(0)
        }
        fn io_out(&mut self, _: u16, _: OpSize, _: u32) -> Result<(), Fault> {
            Ok(())
        }
        fn cpuid(&mut self, _: u32) -> [u32; 4] {
            [0; 4]
        }
        fn rdtsc(&mut self) -> u64 {
            0
        }
    }

    /// A flat byte-addressed RAM for tests that push/pop or take
    /// interrupts.
    #[derive(Default)]
    pub struct Ram(pub std::collections::HashMap<u32, u8>);
    impl Env for Ram {
        type Err = Fault;
        fn read_mem(&mut self, a: u32, s: OpSize) -> Result<u32, Fault> {
            let mut v = 0;
            for i in 0..s.bytes() {
                v |= (*self.0.get(&(a + i)).unwrap_or(&0) as u32) << (8 * i);
            }
            Ok(v)
        }
        fn write_mem(&mut self, a: u32, s: OpSize, val: u32) -> Result<(), Fault> {
            for i in 0..s.bytes() {
                self.0.insert(a + i, (val >> (8 * i)) as u8);
            }
            Ok(())
        }
        fn io_in(&mut self, _: u16, _: OpSize) -> Result<u32, Fault> {
            Ok(0)
        }
        fn io_out(&mut self, _: u16, _: OpSize, _: u32) -> Result<(), Fault> {
            Ok(())
        }
        fn cpuid(&mut self, _: u32) -> [u32; 4] {
            [0; 4]
        }
        fn rdtsc(&mut self) -> u64 {
            0
        }
    }
}

/// ADD/SUB through the executor agree with wrapping arithmetic, and
/// CMP preserves the destination.
#[test]
fn alu_semantics() {
    use nova_x86::exec::execute;
    let mut rng = Rng::new(0x1005);
    let mut env = exec_env::NoMem;
    for _ in 0..CASES {
        let a0 = rng.u32();
        let b0 = rng.u32();

        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        regs.set(Reg::Ebx, b0);
        // add eax, ebx -> 01 D8
        let i = decode(&[0x01, 0xd8]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        assert_eq!(regs.get(Reg::Eax), a0.wrapping_add(b0));

        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        regs.set(Reg::Ebx, b0);
        // cmp eax, ebx -> 39 D8
        let i = decode(&[0x39, 0xd8]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        assert_eq!(regs.get(Reg::Eax), a0, "CMP writes no result");
        // ZF iff equal.
        assert_eq!(regs.eflags & nova_x86::reg::flags::ZF != 0, a0 == b0);
    }
}

/// TLB coherence: after inserting an entry it is found (same tag),
/// never found under another tag, and gone after invalidation.
#[test]
fn tlb_coherence() {
    let mut rng = Rng::new(0x1006);
    for _ in 0..CASES {
        let vpn = rng.below(0x10_0000);
        let vpid = 1 + rng.below(15) as u16;
        let other = 16 + rng.below(16) as u16;
        let mut t = Tlb::new();
        let e = TlbEntry {
            vpid,
            vpn,
            hpa: vpn << 12,
            page_size: 4096,
            write: true,
        };
        t.insert(e);
        assert_eq!(t.lookup(vpid, vpn << 12), Some(e));
        assert_eq!(t.lookup(other, vpn << 12), None);
        t.invalidate(vpid, vpn << 12);
        assert_eq!(t.lookup(vpid, vpn << 12), None);
    }
}

/// Flushing a tag removes exactly that tag's entries.
#[test]
fn tlb_flush_vpid_precise() {
    let mut rng = Rng::new(0x1007);
    for _ in 0..64 {
        let mut vpns = std::collections::BTreeSet::new();
        for _ in 0..(1 + rng.below(63)) {
            vpns.insert(rng.below(4096));
        }
        let mut t = Tlb::new();
        for &vpn in &vpns {
            t.insert(TlbEntry {
                vpid: 1,
                vpn,
                hpa: 0,
                page_size: 4096,
                write: false,
            });
            t.insert(TlbEntry {
                vpid: 2,
                vpn: vpn + 8192,
                hpa: 0,
                page_size: 4096,
                write: false,
            });
        }
        t.flush_vpid(1);
        for &vpn in &vpns {
            assert!(t.lookup(1, vpn << 12).is_none());
        }
    }
}

/// Mapping-database invariant: revoking a node removes its whole
/// subtree and nothing else; the database never leaks nodes.
#[test]
fn mdb_revoke_subtree_exact() {
    let mut rng = Rng::new(0x1008);
    for _ in 0..CASES {
        // A random tree over 16 nodes: parent[i] < i.
        let parents: Vec<usize> = (0..15).map(|_| rng.below(16) as usize).collect();
        let mut db: MapDb<u64> = MapDb::new();
        db.insert_root(0, 0);
        for (i, p) in parents.iter().enumerate() {
            let child = i + 1;
            let parent = *p % child;
            db.delegate((parent, 0), (child, 0));
        }
        let total = db.len();
        assert_eq!(total, 16);

        // Compute the expected subtree of node `cut` by hand.
        let cut = (parents.first().copied().unwrap_or(0) % 15) + 1;
        let mut in_subtree = [false; 16];
        in_subtree[cut] = true;
        loop {
            let mut changed = false;
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = *p % child;
                if in_subtree[parent] && !in_subtree[child] {
                    in_subtree[child] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let expected: usize = in_subtree.iter().filter(|x| **x).count();

        let mut removed = Vec::new();
        db.revoke((cut, 0), true, &mut |k| removed.push(k));
        assert_eq!(removed.len(), expected);
        for (owner, _) in removed {
            assert!(!db.contains(owner, 0));
        }
        assert_eq!(db.len(), total - expected);
        assert!(db.contains(0, 0), "the root is never collateral");
    }
}

/// IOMMU: a device only ever reaches pages explicitly mapped for it,
/// at the translated location.
#[test]
fn iommu_confinement() {
    let mut rng = Rng::new(0x1009);
    for _ in 0..CASES {
        let mut pages = std::collections::BTreeMap::new();
        for _ in 0..(1 + rng.below(31)) {
            pages.insert(rng.below(256), rng.below(256));
        }
        let probe = rng.below(256);
        let mut io = Iommu::enabled();
        for (&bus, &host) in &pages {
            io.map_page(1, bus << 12, host << 12, true);
        }
        let got = io.translate(1, probe << 12, true);
        match pages.get(&probe) {
            Some(&host) => assert_eq!(got, Some(host << 12)),
            None => assert_eq!(got, None),
        }
        // Another device sees nothing.
        assert_eq!(io.translate(2, probe << 12, false), None);
    }
}

/// Shadow page tables built by the vTLB code agree with the MMU's
/// hardware walker for arbitrary fill patterns.
#[test]
fn shadow_fills_match_walker() {
    let mut rng = Rng::new(0x100a);
    for _ in 0..32 {
        let mut fills = std::collections::BTreeMap::new();
        for _ in 0..(1 + rng.below(63)) {
            fills.insert(rng.below(1024) as u32, rng.below(1024));
        }
        use nova_core::hostpt::{FrameAllocator, ShadowPt};
        let mut mem = nova_hw::mem::PhysMem::new(32 << 20);
        let mut alloc = FrameAllocator::new(24 << 20, 8 << 20);
        let mut s = ShadowPt::new(&mut alloc, &mut mem);
        for (&va_page, &pa_page) in &fills {
            s.fill(
                &mut mem,
                &mut alloc,
                va_page << 12,
                pa_page << 12,
                true,
                true,
            );
        }
        let cost = nova_hw::cost::BLM;
        let mut cyc = 0;
        for (&va_page, &pa_page) in &fills {
            let leaf = nova_hw::mmu::walk_2level(
                &mem,
                s.root as u32,
                va_page << 12,
                nova_x86::paging::Access::WRITE,
                false,
                &cost,
                &mut cyc,
            )
            .unwrap();
            assert_eq!(leaf.hpa, pa_page << 12);
        }
        s.flush(&mut mem);
        for &va_page in fills.keys() {
            assert!(
                nova_hw::mmu::walk_2level(
                    &mem,
                    s.root as u32,
                    va_page << 12,
                    nova_x86::paging::Access::READ,
                    false,
                    &cost,
                    &mut cyc,
                )
                .is_err(),
                "flush drops every translation"
            );
        }
    }
}

/// The vTLB guest walk agrees with the architectural access-check
/// predicate (P, W∧WP, US intersected across levels) for arbitrary
/// PDE/PTE flag combinations, and maintains A/D exactly when the
/// access is allowed.
#[test]
fn vtlb_walk_matches_architectural_predicate() {
    use nova_core::hostpt::FrameAllocator;
    use nova_core::obj::{MemMapping, MemRights, MemSpace};
    use nova_core::vtlb::{self, ShadowCache, VtlbOutcome};
    use nova_x86::paging::pte;
    use nova_x86::reg::{cr0, pf_err};

    let mut rng = Rng::new(0x100c);
    for _ in 0..CASES {
        let mut mem = nova_hw::mem::PhysMem::new(32 << 20);
        let mut alloc = FrameAllocator::new(24 << 20, 8 << 20);
        let mut cache = ShadowCache::new(&mut mem, &mut alloc, 4, 1);
        let mut ms = MemSpace::default();
        for p in 0..1024u64 {
            ms.map(
                p,
                MemMapping {
                    hpa: (4 << 20) + p * 4096,
                    rights: MemRights::RW,
                },
            );
        }

        // Random guest PDE/PTE flags (P always set on the PDE so the
        // walk reaches the PTE; the PTE's P is itself random).
        let pde_w = rng.below(2) == 1;
        let pde_us = rng.below(2) == 1;
        let pte_p = rng.below(8) != 0;
        let pte_w = rng.below(2) == 1;
        let pte_us = rng.below(2) == 1;
        let wp = rng.below(2) == 1;
        let write = rng.below(2) == 1;
        let user = rng.below(2) == 1;

        let groot: u32 = 0x10_000;
        let gpt: u32 = 0x11_000;
        let mut pde = gpt | pte::P;
        if pde_w {
            pde |= pte::W;
        }
        if pde_us {
            pde |= pte::US;
        }
        let mut pte_v = 0x5000;
        if pte_p {
            pte_v |= pte::P;
        }
        if pte_w {
            pte_v |= pte::W;
        }
        if pte_us {
            pte_v |= pte::US;
        }
        let pde_hpa = ms.translate(groot as u64 + 4).unwrap(); // di = 1
        mem.write_u32(pde_hpa, pde);
        let pte_hpa = ms.translate(gpt as u64).unwrap(); // ti = 0
        mem.write_u32(pte_hpa, pte_v);

        let mut vmcs = nova_hw::vmx::Vmcs::new_shadow(cache.active_root(), cache.active_vpid());
        vmcs.guest.cr3 = groot;
        vmcs.guest.cr0 = cr0::PE | cr0::PG | if wp { cr0::WP } else { 0 };

        let gva: u32 = 0x40_0000; // di = 1, ti = 0
        let mut err_in = 0;
        if write {
            err_in |= pf_err::WRITE;
        }
        if user {
            err_in |= pf_err::USER;
        }
        let out =
            vtlb::handle_page_fault(&mut mem, &mut alloc, &ms, &mut cache, &vmcs, gva, err_in);

        // The architectural predicate.
        let user_ok = pde_us && pte_us;
        let writable = (pde_w && pte_w) || (!user && !wp);
        let expected = if !pte_p {
            VtlbOutcome::InjectPf { err: err_in }
        } else if (user && !user_ok) || (write && !writable) {
            VtlbOutcome::InjectPf {
                err: err_in | pf_err::PRESENT,
            }
        } else {
            VtlbOutcome::Filled
        };
        assert_eq!(
            out, expected,
            "pde_w={pde_w} pde_us={pde_us} pte_p={pte_p} pte_w={pte_w} \
             pte_us={pte_us} wp={wp} write={write} user={user}"
        );

        // A/D maintenance: set exactly on allowed accesses, D only on
        // writes.
        let pde_after = mem.read_u32(pde_hpa);
        let pte_after = mem.read_u32(pte_hpa);
        if expected == VtlbOutcome::Filled {
            assert_ne!(pde_after & pte::A, 0, "PDE.A after allowed access");
            assert_ne!(pte_after & pte::A, 0, "PTE.A after allowed access");
            assert_eq!(
                pte_after & pte::D != 0,
                write,
                "PTE.D tracks writes exactly"
            );
        } else {
            assert_eq!(pde_after & pte::A, 0, "faulting walk leaves A clear");
            assert_eq!(pte_after & (pte::A | pte::D), 0);
        }
    }
}

/// Shadow-cache coherence across address-space switches: after an
/// A→B→A round trip, translations whose guest entries the guest left
/// alone still resolve from the cached shadow, and every entry the
/// guest rewrote while B was active is gone.
#[test]
fn shadow_cache_round_trip_is_coherent() {
    use nova_core::hostpt::FrameAllocator;
    use nova_core::obj::{MemMapping, MemRights, MemSpace};
    use nova_core::vtlb::{self, CrOutcome, ShadowCache};
    use nova_x86::paging::pte;
    use nova_x86::reg::{cr0, pf_err};
    use nova_x86::Reg;

    let mut rng = Rng::new(0x100d);
    for _ in 0..32 {
        let mut mem = nova_hw::mem::PhysMem::new(32 << 20);
        let mut alloc = FrameAllocator::new(24 << 20, 8 << 20);
        let mut cache = ShadowCache::new(&mut mem, &mut alloc, 4, 1);
        let mut ms = MemSpace::default();
        for p in 0..1024u64 {
            ms.map(
                p,
                MemMapping {
                    hpa: (4 << 20) + p * 4096,
                    rights: MemRights::RW,
                },
            );
        }

        // Space A: root 0x10_000, PT 0x11_000 mapping random PTEs in
        // the 4 MB region at GVA 0x40_0000. Space B: root 0x20_000.
        let build = |mem: &mut nova_hw::mem::PhysMem, ms: &MemSpace, root: u32, pt: u32| {
            let pde_hpa = ms.translate(root as u64 + 4).unwrap();
            mem.write_u32(pde_hpa, pt | pte::P | pte::W | pte::US);
        };
        build(&mut mem, &ms, 0x10_000, 0x11_000);
        build(&mut mem, &ms, 0x20_000, 0x21_000);
        let mut mapped = std::collections::BTreeMap::new();
        for _ in 0..(1 + rng.below(15)) {
            let ti = rng.below(16) as u32;
            let target = 0x100 + rng.below(512) as u32;
            mapped.insert(ti, target);
            let pte_hpa = ms.translate(0x11_000u64 + ti as u64 * 4).unwrap();
            mem.write_u32(pte_hpa, (target << 12) | pte::P | pte::W | pte::US);
        }
        let pte_hpa_b = ms.translate(0x21_000u64).unwrap();
        mem.write_u32(pte_hpa_b, (0x90 << 12) | pte::P | pte::W | pte::US);

        let mut vmcs = nova_hw::vmx::Vmcs::new_shadow(cache.active_root(), cache.active_vpid());
        vmcs.guest.cr0 = cr0::PE | cr0::PG;
        let mov_cr3 = |mem: &mut nova_hw::mem::PhysMem,
                       alloc: &mut FrameAllocator,
                       cache: &mut ShadowCache,
                       vmcs: &mut nova_hw::vmx::Vmcs,
                       val: u32| {
            vmcs.guest.set(Reg::Eax, val);
            vtlb::handle_cr_access(mem, alloc, &ms, cache, vmcs, 3, true, Reg::Eax, 3)
        };

        // Enter A, fill everything, visit B, then mutate a random
        // subset of A's PTEs behind the cache's back.
        mov_cr3(&mut mem, &mut alloc, &mut cache, &mut vmcs, 0x10_000);
        for &ti in mapped.keys() {
            let gva = 0x40_0000 | (ti << 12);
            let out = vtlb::handle_page_fault(
                &mut mem,
                &mut alloc,
                &ms,
                &mut cache,
                &vmcs,
                gva,
                pf_err::WRITE,
            );
            assert_eq!(out, nova_core::vtlb::VtlbOutcome::Filled);
        }
        mov_cr3(&mut mem, &mut alloc, &mut cache, &mut vmcs, 0x20_000);
        vtlb::handle_page_fault(
            &mut mem,
            &mut alloc,
            &ms,
            &mut cache,
            &vmcs,
            0x40_0000,
            pf_err::WRITE,
        );
        let mut changed = std::collections::BTreeSet::new();
        for &ti in mapped.keys() {
            if rng.below(2) == 1 {
                changed.insert(ti);
                let pte_hpa = ms.translate(0x11_000u64 + ti as u64 * 4).unwrap();
                mem.write_u32(pte_hpa, (0x300 << 12) | pte::P | pte::W | pte::US);
            }
        }

        // Return to A: a cache hit that must resynchronize precisely.
        let out = mov_cr3(&mut mem, &mut alloc, &mut cache, &mut vmcs, 0x10_000);
        assert_eq!(
            out,
            CrOutcome::Switch {
                hit: true,
                evicted: false
            }
        );
        let cost = nova_hw::cost::BLM;
        let mut cyc = 0;
        for (&ti, &target) in &mapped {
            let gva = 0x40_0000 | (ti << 12);
            let walk = nova_hw::mmu::walk_2level(
                &mem,
                cache.active_root() as u32,
                gva,
                nova_x86::paging::Access::WRITE,
                false,
                &cost,
                &mut cyc,
            );
            if changed.contains(&ti) {
                assert!(walk.is_err(), "rewritten entry must not survive resync");
            } else {
                assert_eq!(
                    walk.unwrap().hpa,
                    (4 << 20) + (target as u64) * 4096,
                    "untouched entry survives the round trip"
                );
            }
        }
    }
}

/// Shift semantics agree with Rust's wrapping operators for all
/// counts the hardware masks to 0..31.
#[test]
fn shift_semantics() {
    use nova_x86::exec::execute;
    let mut rng = Rng::new(0x100b);
    let mut env = exec_env::NoMem;
    for _ in 0..CASES {
        let a0 = rng.u32();
        let n = rng.below(32) as u8;

        // shl eax, n -> C1 E0 n
        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        let i = decode(&[0xc1, 0xe0, n]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let expect = if n == 0 { a0 } else { a0 << n };
        assert_eq!(regs.get(Reg::Eax), expect);

        // shr eax, n -> C1 E8 n
        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        let i = decode(&[0xc1, 0xe8, n]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let expect = if n == 0 { a0 } else { a0 >> n };
        assert_eq!(regs.get(Reg::Eax), expect);

        // sar eax, n -> C1 F8 n
        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        let i = decode(&[0xc1, 0xf8, n]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let expect = if n == 0 {
            a0
        } else {
            ((a0 as i32) >> n) as u32
        };
        assert_eq!(regs.get(Reg::Eax), expect);
    }
}

/// MUL/DIV round-trip: (a*b)/b == a with the remainder folded in.
#[test]
fn mul_div_roundtrip() {
    use nova_x86::exec::execute;
    let mut rng = Rng::new(0x100c);
    let mut env = exec_env::NoMem;
    for _ in 0..CASES {
        let a0 = rng.u32();
        let b0 = 1 + (rng.u32() % (u32::MAX - 1));

        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        regs.set(Reg::Ebx, b0);
        // mul ebx: EDX:EAX = EAX * EBX
        let i = decode(&[0xf7, 0xe3]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let wide = (a0 as u64) * (b0 as u64);
        assert_eq!(regs.get(Reg::Eax), wide as u32);
        assert_eq!(regs.get(Reg::Edx), (wide >> 32) as u32);

        // div ebx: back to (a0, remainder 0)
        let i = decode(&[0xf7, 0xf3]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        assert_eq!(regs.get(Reg::Eax), a0);
        assert_eq!(regs.get(Reg::Edx), 0);
    }
}

/// Effective-address arithmetic matches the definition for every
/// base/index/scale/displacement combination.
#[test]
fn effective_address_formula() {
    use nova_x86::exec::effective_address;
    let mut rng = Rng::new(0x100d);
    for _ in 0..CASES {
        let base = rng.u32() % 0x1000_0000;
        let index = rng.u32() % 0x1000;
        let scale = rng.pick(&[1u8, 2, 4, 8]);
        let disp = (rng.below(0x10000) as i32) - 0x8000;
        let mut regs = Regs::default();
        regs.set(Reg::Ebx, base);
        regs.set(Reg::Esi, index);
        let m = MemRef {
            base: Some(Reg::Ebx),
            index: Some((Reg::Esi, scale)),
            disp,
        };
        let got = effective_address(&m, &regs);
        let expect = base
            .wrapping_add(index.wrapping_mul(scale as u32))
            .wrapping_add(disp as u32);
        assert_eq!(got, expect);
    }
}

/// Capability-space invariant: set/get/remove behave like a map, and
/// lookups after a random op sequence agree with a model map.
#[test]
fn capspace_map_semantics() {
    use nova_core::cap::{CapSpace, Capability, Perms};
    use nova_core::obj::{ObjRef, SmId};
    let mut rng = Rng::new(0x100e);
    for _ in 0..64 {
        let mut cs = CapSpace::new();
        let mut model: std::collections::HashMap<usize, usize> = Default::default();
        let ops = 1 + rng.below(63);
        for i in 0..ops as usize {
            let sel = rng.below(64) as usize;
            if rng.next() & 1 == 1 {
                cs.set(
                    sel,
                    Capability {
                        obj: ObjRef::Sm(SmId(i)),
                        perms: Perms::ALL,
                    },
                );
                model.insert(sel, i);
            } else {
                cs.remove(sel);
                model.remove(&sel);
            }
        }
        for sel in 0..64 {
            let got = cs.get(sel).map(|c| match c.obj {
                ObjRef::Sm(SmId(i)) => i,
                _ => usize::MAX,
            });
            assert_eq!(got, model.get(&sel).copied());
        }
        assert_eq!(cs.count(), model.len());
    }
}

/// INT n followed by IRET restores EIP, ESP and EFLAGS exactly.
#[test]
fn int_iret_roundtrip() {
    use nova_x86::exec::{execute, Env};
    use nova_x86::insn::OpSize;
    let mut rng = Rng::new(0x100f);
    for _ in 0..CASES {
        let vec = rng.below(64) as u8;
        let eflags_if = rng.next() & 1 == 1;
        let mut env = exec_env::Ram::default();
        // IDT at 0x5000: handler at 0x4000 for every vector.
        let mut regs = Regs {
            idt_base: 0x5000,
            idt_limit: 0x7ff,
            ..Regs::default()
        };
        env.write_mem(0x5000 + vec as u32 * 8, OpSize::Dword, 0x0008_4000)
            .unwrap();
        env.write_mem(0x5000 + vec as u32 * 8 + 4, OpSize::Dword, 0x8e00)
            .unwrap();
        regs.set(Reg::Esp, 0x8000);
        regs.eip = 0x100;
        if eflags_if {
            regs.eflags |= nova_x86::reg::flags::IF;
        }
        let before = regs.clone();

        let int = decode(&[0xcd, vec]).unwrap();
        execute(&int, &mut regs, &mut env).unwrap();
        assert_eq!(regs.eip, 0x4000);
        assert!(!regs.if_set(), "gates clear IF");

        let iret = decode(&[0xcf]).unwrap();
        execute(&iret, &mut regs, &mut env).unwrap();
        assert_eq!(regs.eip, before.eip + 2, "resumes after INT");
        assert_eq!(regs.get(Reg::Esp), before.get(Reg::Esp));
        assert_eq!(regs.eflags, before.eflags);
    }
}
