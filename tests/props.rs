//! Property-based tests over the core data structures and invariants:
//! assembler/decoder agreement, ALU semantics, TLB coherence, the
//! mapping database's revocation invariants, capability-space
//! behaviour, and IOMMU confinement.

use proptest::prelude::*;

use nova_core::mdb::MapDb;
use nova_hw::iommu::Iommu;
use nova_hw::tlb::{Tlb, TlbEntry};
use nova_x86::decode::decode;
use nova_x86::insn::{AluOp, MemRef, Op, Operand};
use nova_x86::reg::{Reg, Regs};
use nova_x86::Asm;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::ALL.to_vec())
}

proptest! {
    /// Whatever the assembler emits, the decoder parses back to the
    /// same operation, operands and length.
    #[test]
    fn assembler_decoder_roundtrip_mov_ri(r in arb_reg(), imm in any::<u32>()) {
        let mut a = Asm::new(0);
        a.mov_ri(r, imm);
        let code = a.finish();
        let i = decode(&code).unwrap();
        prop_assert_eq!(i.op, Op::Mov);
        prop_assert_eq!(i.dst, Operand::Reg(r));
        prop_assert_eq!(i.src, Operand::Imm(imm));
        prop_assert_eq!(i.len as usize, code.len());
    }

    #[test]
    fn assembler_decoder_roundtrip_alu(
        op in prop::sample::select(&[
            AluOp::Add, AluOp::Or, AluOp::Adc, AluOp::Sbb,
            AluOp::And, AluOp::Sub, AluOp::Xor, AluOp::Cmp,
        ][..]),
        dst in arb_reg(),
        src in arb_reg(),
        imm in any::<u32>(),
    ) {
        let mut a = Asm::new(0);
        a.alu_rr(op, dst, src);
        a.alu_ri(op, dst, imm);
        let code = a.finish();
        let i1 = decode(&code).unwrap();
        prop_assert_eq!(i1.op, Op::Alu(op));
        prop_assert_eq!(i1.dst, Operand::Reg(dst));
        prop_assert_eq!(i1.src, Operand::Reg(src));
        let i2 = decode(&code[i1.len as usize..]).unwrap();
        prop_assert_eq!(i2.op, Op::Alu(op));
        prop_assert_eq!(i2.src, Operand::Imm(imm));
    }

    #[test]
    fn assembler_decoder_roundtrip_mem(
        base in arb_reg(),
        disp in -0x10000i32..0x10000,
        r in arb_reg(),
    ) {
        let m = MemRef::base_disp(base, disp);
        let mut a = Asm::new(0);
        a.mov_rm(r, m);
        a.mov_mr(m, r);
        let code = a.finish();
        let i1 = decode(&code).unwrap();
        prop_assert_eq!(i1.src, Operand::Mem(m));
        let i2 = decode(&code[i1.len as usize..]).unwrap();
        prop_assert_eq!(i2.dst, Operand::Mem(m));
    }

    /// The decoder never panics on arbitrary bytes and always reports
    /// a length within the architectural limit.
    #[test]
    fn decoder_total_on_junk(bytes in prop::collection::vec(any::<u8>(), 1..20)) {
        if let Ok(i) = decode(&bytes) {
            prop_assert!(i.len as usize <= nova_x86::decode::MAX_INSN_LEN);
            prop_assert!(i.len as usize <= bytes.len());
        }
    }

    /// ADD/SUB through the executor agree with wrapping arithmetic,
    /// and CMP preserves the destination.
    #[test]
    fn alu_semantics(a0 in any::<u32>(), b0 in any::<u32>()) {
        use nova_x86::exec::{execute, Env, Fault};
        use nova_x86::insn::OpSize;
        struct NoMem;
        impl Env for NoMem {
            type Err = Fault;
            fn read_mem(&mut self, _: u32, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn write_mem(&mut self, _: u32, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn io_in(&mut self, _: u16, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn io_out(&mut self, _: u16, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn cpuid(&mut self, _: u32) -> [u32; 4] { [0; 4] }
            fn rdtsc(&mut self) -> u64 { 0 }
        }
        let mut env = NoMem;

        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        regs.set(Reg::Ebx, b0);
        // add eax, ebx -> 01 D8
        let i = decode(&[0x01, 0xd8]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        prop_assert_eq!(regs.get(Reg::Eax), a0.wrapping_add(b0));

        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        regs.set(Reg::Ebx, b0);
        // cmp eax, ebx -> 39 D8
        let i = decode(&[0x39, 0xd8]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        prop_assert_eq!(regs.get(Reg::Eax), a0, "CMP writes no result");
        // ZF iff equal.
        prop_assert_eq!(
            regs.eflags & nova_x86::reg::flags::ZF != 0,
            a0 == b0
        );
    }

    /// TLB coherence: after inserting an entry it is found (same tag),
    /// never found under another tag, and gone after invalidation.
    #[test]
    fn tlb_coherence(vpn in 0u64..0x10_0000, vpid in 1u16..16, other in 16u16..32) {
        let mut t = Tlb::new();
        let e = TlbEntry { vpid, vpn, hpa: vpn << 12, page_size: 4096, write: true };
        t.insert(e);
        prop_assert_eq!(t.lookup(vpid, vpn << 12), Some(e));
        prop_assert_eq!(t.lookup(other, vpn << 12), None);
        t.invalidate(vpid, vpn << 12);
        prop_assert_eq!(t.lookup(vpid, vpn << 12), None);
    }

    /// Flushing a tag removes exactly that tag's entries.
    #[test]
    fn tlb_flush_vpid_precise(vpns in prop::collection::btree_set(0u64..4096, 1..64)) {
        let mut t = Tlb::new();
        for &vpn in &vpns {
            t.insert(TlbEntry { vpid: 1, vpn, hpa: 0, page_size: 4096, write: false });
            t.insert(TlbEntry {
                vpid: 2,
                vpn: vpn + 8192,
                hpa: 0,
                page_size: 4096,
                write: false,
            });
        }
        t.flush_vpid(1);
        for &vpn in &vpns {
            prop_assert!(t.lookup(1, vpn << 12).is_none());
        }
    }

    /// Mapping-database invariant: revoking a node removes its whole
    /// subtree and nothing else; the database never leaks nodes.
    #[test]
    fn mdb_revoke_subtree_exact(
        // A random tree over 16 nodes: parent[i] < i.
        parents in prop::collection::vec(0usize..16, 15),
    ) {
        let mut db: MapDb<u64> = MapDb::new();
        db.insert_root(0, 0);
        for (i, p) in parents.iter().enumerate() {
            let child = i + 1;
            let parent = *p % child;
            db.delegate((parent, 0), (child, 0));
        }
        let total = db.len();
        prop_assert_eq!(total, 16);

        // Compute the expected subtree of node `cut` by hand.
        let cut = (parents.first().copied().unwrap_or(0) % 15) + 1;
        let mut in_subtree = [false; 16];
        in_subtree[cut] = true;
        loop {
            let mut changed = false;
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = *p % child;
                if in_subtree[parent] && !in_subtree[child] {
                    in_subtree[child] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let expected: usize = in_subtree.iter().filter(|x| **x).count();

        let mut removed = Vec::new();
        db.revoke((cut, 0), true, &mut |k| removed.push(k));
        prop_assert_eq!(removed.len(), expected);
        for (owner, _) in removed {
            prop_assert!(!db.contains(owner, 0));
        }
        prop_assert_eq!(db.len(), total - expected);
        prop_assert!(db.contains(0, 0), "the root is never collateral");
    }

    /// IOMMU: a device only ever reaches pages explicitly mapped for
    /// it, at the translated location.
    #[test]
    fn iommu_confinement(
        pages in prop::collection::btree_map(0u64..256, 0u64..256, 1..32),
        probe in 0u64..256,
    ) {
        let mut io = Iommu::enabled();
        for (&bus, &host) in &pages {
            io.map_page(1, bus << 12, host << 12, true);
        }
        let got = io.translate(1, probe << 12, true);
        match pages.get(&probe) {
            Some(&host) => prop_assert_eq!(got, Some(host << 12)),
            None => prop_assert_eq!(got, None),
        }
        // Another device sees nothing.
        prop_assert_eq!(io.translate(2, probe << 12, false), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shadow page tables built by the vTLB code agree with the MMU's
    /// hardware walker for arbitrary fill patterns.
    #[test]
    fn shadow_fills_match_walker(
        fills in prop::collection::btree_map(0u32..1024, 0u64..1024, 1..64),
    ) {
        use nova_core::hostpt::{FrameAllocator, ShadowPt};
        let mut mem = nova_hw::mem::PhysMem::new(32 << 20);
        let mut alloc = FrameAllocator::new(24 << 20, 8 << 20);
        let mut s = ShadowPt::new(&mut alloc, &mut mem);
        for (&va_page, &pa_page) in &fills {
            s.fill(&mut mem, &mut alloc, va_page << 12, pa_page << 12, true);
        }
        let cost = nova_hw::cost::BLM;
        let mut cyc = 0;
        for (&va_page, &pa_page) in &fills {
            let leaf = nova_hw::mmu::walk_2level(
                &mem,
                s.root as u32,
                va_page << 12,
                nova_x86::paging::Access::WRITE,
                false,
                &cost,
                &mut cyc,
            ).unwrap();
            prop_assert_eq!(leaf.hpa, pa_page << 12);
        }
        s.flush(&mut mem);
        for &va_page in fills.keys() {
            prop_assert!(nova_hw::mmu::walk_2level(
                &mem, s.root as u32, va_page << 12,
                nova_x86::paging::Access::READ, false, &cost, &mut cyc,
            ).is_err(), "flush drops every translation");
        }
    }
}

proptest! {
    /// Shift semantics agree with Rust's wrapping operators for all
    /// counts the hardware masks to 0..31.
    #[test]
    fn shift_semantics(a0 in any::<u32>(), n in 0u8..32) {
        use nova_x86::exec::{execute, Env, Fault};
        use nova_x86::insn::OpSize;
        struct NoMem;
        impl Env for NoMem {
            type Err = Fault;
            fn read_mem(&mut self, _: u32, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn write_mem(&mut self, _: u32, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn io_in(&mut self, _: u16, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn io_out(&mut self, _: u16, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn cpuid(&mut self, _: u32) -> [u32; 4] { [0; 4] }
            fn rdtsc(&mut self) -> u64 { 0 }
        }
        let mut env = NoMem;

        // shl eax, n -> C1 E0 n
        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        let i = decode(&[0xc1, 0xe0, n]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let expect = if n == 0 { a0 } else { a0 << n };
        prop_assert_eq!(regs.get(Reg::Eax), expect);

        // shr eax, n -> C1 E8 n
        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        let i = decode(&[0xc1, 0xe8, n]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let expect = if n == 0 { a0 } else { a0 >> n };
        prop_assert_eq!(regs.get(Reg::Eax), expect);

        // sar eax, n -> C1 F8 n
        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        let i = decode(&[0xc1, 0xf8, n]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let expect = if n == 0 { a0 } else { ((a0 as i32) >> n) as u32 };
        prop_assert_eq!(regs.get(Reg::Eax), expect);
    }

    /// MUL/DIV round-trip: (a*b)/b == a with the remainder folded in.
    #[test]
    fn mul_div_roundtrip(a0 in any::<u32>(), b0 in 1u32..u32::MAX) {
        use nova_x86::exec::{execute, Env, Fault};
        use nova_x86::insn::OpSize;
        struct NoMem;
        impl Env for NoMem {
            type Err = Fault;
            fn read_mem(&mut self, _: u32, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn write_mem(&mut self, _: u32, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn io_in(&mut self, _: u16, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn io_out(&mut self, _: u16, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn cpuid(&mut self, _: u32) -> [u32; 4] { [0; 4] }
            fn rdtsc(&mut self) -> u64 { 0 }
        }
        let mut env = NoMem;

        let mut regs = Regs::default();
        regs.set(Reg::Eax, a0);
        regs.set(Reg::Ebx, b0);
        // mul ebx: EDX:EAX = EAX * EBX
        let i = decode(&[0xf7, 0xe3]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        let wide = (a0 as u64) * (b0 as u64);
        prop_assert_eq!(regs.get(Reg::Eax), wide as u32);
        prop_assert_eq!(regs.get(Reg::Edx), (wide >> 32) as u32);

        // div ebx: back to (a0, remainder 0)
        let i = decode(&[0xf7, 0xf3]).unwrap();
        execute(&i, &mut regs, &mut env).unwrap();
        prop_assert_eq!(regs.get(Reg::Eax), a0);
        prop_assert_eq!(regs.get(Reg::Edx), 0);
    }

    /// Effective-address arithmetic matches the definition for every
    /// base/index/scale/displacement combination.
    #[test]
    fn effective_address_formula(
        base in 0u32..0x1000_0000,
        index in 0u32..0x1000,
        scale in prop::sample::select(&[1u8, 2, 4, 8][..]),
        disp in -0x8000i32..0x8000,
    ) {
        use nova_x86::exec::effective_address;
        let mut regs = Regs::default();
        regs.set(Reg::Ebx, base);
        regs.set(Reg::Esi, index);
        let m = MemRef {
            base: Some(Reg::Ebx),
            index: Some((Reg::Esi, scale)),
            disp,
        };
        let got = effective_address(&m, &regs);
        let expect = base
            .wrapping_add(index.wrapping_mul(scale as u32))
            .wrapping_add(disp as u32);
        prop_assert_eq!(got, expect);
    }

    /// Capability-space invariant: set/get/remove behave like a map,
    /// and `insert` never clobbers an occupied slot.
    #[test]
    fn capspace_map_semantics(
        ops in prop::collection::vec((0usize..64, any::<bool>()), 1..64),
    ) {
        use nova_core::cap::{CapSpace, Capability, Perms};
        use nova_core::obj::{ObjRef, SmId};
        let mut cs = CapSpace::new();
        let mut model: std::collections::HashMap<usize, usize> = Default::default();
        for (i, (sel, insert)) in ops.into_iter().enumerate() {
            if insert {
                cs.set(sel, Capability { obj: ObjRef::Sm(SmId(i)), perms: Perms::ALL });
                model.insert(sel, i);
            } else {
                cs.remove(sel);
                model.remove(&sel);
            }
        }
        for sel in 0..64 {
            let got = cs.get(sel).map(|c| match c.obj {
                ObjRef::Sm(SmId(i)) => i,
                _ => usize::MAX,
            });
            prop_assert_eq!(got, model.get(&sel).copied());
        }
        prop_assert_eq!(cs.count(), model.len());
    }

    /// INT n followed by IRET restores EIP, ESP and EFLAGS exactly.
    #[test]
    fn int_iret_roundtrip(vec in 0u8..64, eflags_if in any::<bool>()) {
        use nova_x86::exec::{execute, Env, Fault};
        use nova_x86::insn::OpSize;
        #[derive(Default)]
        struct Ram(std::collections::HashMap<u32, u8>);
        impl Env for Ram {
            type Err = Fault;
            fn read_mem(&mut self, a: u32, s: OpSize) -> Result<u32, Fault> {
                let mut v = 0;
                for i in 0..s.bytes() {
                    v |= (*self.0.get(&(a + i)).unwrap_or(&0) as u32) << (8 * i);
                }
                Ok(v)
            }
            fn write_mem(&mut self, a: u32, s: OpSize, val: u32) -> Result<(), Fault> {
                for i in 0..s.bytes() {
                    self.0.insert(a + i, (val >> (8 * i)) as u8);
                }
                Ok(())
            }
            fn io_in(&mut self, _: u16, _: OpSize) -> Result<u32, Fault> { Ok(0) }
            fn io_out(&mut self, _: u16, _: OpSize, _: u32) -> Result<(), Fault> { Ok(()) }
            fn cpuid(&mut self, _: u32) -> [u32; 4] { [0; 4] }
            fn rdtsc(&mut self) -> u64 { 0 }
        }
        let mut env = Ram::default();
        // IDT at 0x5000: handler at 0x4000 for every vector.
        let mut regs = Regs {
            idt_base: 0x5000,
            idt_limit: 0x7ff,
            ..Regs::default()
        };
        env.write_mem(0x5000 + vec as u32 * 8, OpSize::Dword, 0x0008_4000).unwrap();
        env.write_mem(0x5000 + vec as u32 * 8 + 4, OpSize::Dword, 0x8e00).unwrap();
        regs.set(Reg::Esp, 0x8000);
        regs.eip = 0x100;
        if eflags_if {
            regs.eflags |= nova_x86::reg::flags::IF;
        }
        let before = regs.clone();

        let int = decode(&[0xcd, vec]).unwrap();
        execute(&int, &mut regs, &mut env).unwrap();
        prop_assert_eq!(regs.eip, 0x4000);
        prop_assert!(!regs.if_set(), "gates clear IF");

        let iret = decode(&[0xcf]).unwrap();
        execute(&iret, &mut regs, &mut env).unwrap();
        prop_assert_eq!(regs.eip, before.eip + 2, "resumes after INT");
        prop_assert_eq!(regs.get(Reg::Esp), before.get(Reg::Esp));
        prop_assert_eq!(regs.eflags, before.eflags);
    }
}
