//! NOVA-rs — umbrella crate re-exporting the full NOVA reproduction.
//!
//! See the individual crates for detail:
//! - [`x86`] (`nova-x86`): x86 ISA substrate (decoder, assembler, paging).
//! - [`hw`] (`nova-hw`): simulated hardware platform (CPU, VMX, MMU, devices).
//! - [`hypervisor`] (`nova-core`): the microhypervisor — the paper's contribution.
//! - [`user`] (`nova-user`): root partition manager and user-level services.
//! - [`vmm`] (`nova-vmm`): the user-level virtual-machine monitor.
//! - [`guest`] (`nova-guest`): guest operating system and workloads.
//! - [`baseline`] (`nova-baseline`): monolithic/paravirt comparators.
//! - [`trace`] (`nova-trace`): cycle-stamped tracing, metrics, exporters.

pub use nova_baseline as baseline;
pub use nova_core as hypervisor;
pub use nova_guest as guest;
pub use nova_hw as hw;
pub use nova_trace as trace;
pub use nova_user as user;
pub use nova_vmm as vmm;
pub use nova_x86 as x86;
